"""Unit tests for the Hessenberg matrix container and its incremental QR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.arnoldi import arnoldi_process
from repro.core.hessenberg import HessenbergMatrix


def build_from_arnoldi(A, m, beta_vec):
    """Helper: run Arnoldi and feed its columns into a HessenbergMatrix."""
    Q, H, _ = arnoldi_process(A, beta_vec, m)
    hess = HessenbergMatrix(H.shape[1], beta=float(np.linalg.norm(beta_vec)))
    for j in range(H.shape[1]):
        hess.add_column(H[: j + 2, j])
    return hess, H


class TestConstruction:
    def test_requires_positive_size(self):
        with pytest.raises(ValueError):
            HessenbergMatrix(0)

    def test_initial_state(self):
        h = HessenbergMatrix(5, beta=3.0)
        assert h.k == 0
        assert h.beta == 3.0
        assert h.least_squares_residual() == 3.0
        assert h.max_abs_entry() == 0.0

    def test_column_length_validated(self):
        h = HessenbergMatrix(4, beta=1.0)
        with pytest.raises(ValueError, match="entries"):
            h.add_column([1.0, 2.0, 3.0])  # first column needs exactly 2

    def test_overflow_rejected(self):
        h = HessenbergMatrix(1, beta=1.0)
        h.add_column([1.0, 0.5])
        with pytest.raises(RuntimeError, match="full"):
            h.add_column([1.0, 0.5, 0.1])


class TestIncrementalQR:
    def test_residual_matches_lstsq(self, rng):
        # The Givens residual must equal the true least-squares residual of
        # min ||H y - beta e1||.
        m = 8
        beta = 2.5
        hess = HessenbergMatrix(m, beta=beta)
        H = np.zeros((m + 1, m))
        for j in range(m):
            col = rng.standard_normal(j + 2)
            col[j + 1] = abs(col[j + 1]) + 0.1
            H[: j + 2, j] = col
            est = hess.add_column(col)
            e1 = np.zeros(j + 2)
            e1[0] = beta
            _, res, _, _ = np.linalg.lstsq(H[: j + 2, : j + 1], e1, rcond=None)
            true_res = np.sqrt(res[0]) if res.size else np.linalg.norm(
                H[: j + 2, : j + 1] @ np.linalg.lstsq(H[: j + 2, : j + 1], e1, rcond=None)[0] - e1)
            assert est == pytest.approx(true_res, rel=1e-10, abs=1e-12)

    def test_triangular_factor_consistent(self, rng, poisson_small):
        v0 = rng.standard_normal(poisson_small.shape[0])
        hess, H = build_from_arnoldi(poisson_small, 6, v0)
        # Solving R y = g must give the least-squares solution of H y = beta e1.
        y_qr = np.linalg.solve(hess.R, hess.g[: hess.k])
        e1 = np.zeros(hess.k + 1)
        e1[0] = hess.beta
        y_ls, *_ = np.linalg.lstsq(H, e1, rcond=None)
        np.testing.assert_allclose(y_qr, y_ls, rtol=1e-8, atol=1e-10)

    def test_r_is_upper_triangular(self, rng, poisson_small):
        v0 = rng.standard_normal(poisson_small.shape[0])
        hess, _ = build_from_arnoldi(poisson_small, 5, v0)
        R = hess.R
        np.testing.assert_allclose(R, np.triu(R))

    def test_huge_entries_do_not_overflow(self):
        # Givens rotations must survive the paper's 1e+150-scaled faults.
        hess = HessenbergMatrix(2, beta=1.0)
        res = hess.add_column([1e150, 1.0])
        assert np.isfinite(res)
        res = hess.add_column([1.0, 1e150, 2.0])
        assert np.isfinite(res)
        assert np.all(np.isfinite(hess.R))

    def test_nonfinite_entry_propagates(self):
        hess = HessenbergMatrix(2, beta=1.0)
        res = hess.add_column([np.nan, 1.0])
        assert np.isnan(res) or not np.isfinite(res)


class TestAnalysis:
    def test_entry_accessor(self):
        hess = HessenbergMatrix(3, beta=1.0)
        hess.add_column([2.0, 3.0])
        assert hess.entry(0, 0) == 2.0
        assert hess.entry(1, 0) == 3.0
        with pytest.raises(IndexError):
            hess.entry(0, 1)

    def test_bound_violation(self):
        hess = HessenbergMatrix(2, beta=1.0)
        hess.add_column([5.0, 1.0])
        assert hess.violates_bound(4.0)
        assert not hess.violates_bound(6.0)
        assert hess.max_abs_entry() == 5.0

    def test_spd_hessenberg_is_tridiagonal(self, rng, poisson_small):
        v0 = rng.standard_normal(poisson_small.shape[0])
        hess, _ = build_from_arnoldi(poisson_small, 8, v0)
        assert hess.is_tridiagonal()
        assert hess.bandwidth() <= 1

    def test_nonsymmetric_hessenberg_is_not_tridiagonal(self, rng, tridiag_nonsym):
        v0 = rng.standard_normal(tridiag_nonsym.shape[0])
        hess, _ = build_from_arnoldi(tridiag_nonsym, 8, v0)
        assert not hess.is_tridiagonal()
        assert hess.bandwidth() > 1

    def test_rank_of_well_conditioned_block(self, rng, poisson_small):
        v0 = rng.standard_normal(poisson_small.shape[0])
        hess, _ = build_from_arnoldi(poisson_small, 6, v0)
        assert hess.numerical_rank() == hess.k
        assert not hess.is_rank_deficient()
        assert hess.smallest_singular_value() > 0.0

    def test_rank_deficiency_detected(self):
        hess = HessenbergMatrix(3, beta=1.0)
        hess.add_column([1.0, 1.0])
        hess.add_column([0.0, 0.0, 1.0])   # second column of the square block is zero
        assert hess.is_rank_deficient()
        assert hess.numerical_rank() < hess.k

    def test_rank_with_nonfinite_entries(self):
        hess = HessenbergMatrix(2, beta=1.0)
        hess.add_column([np.inf, 1.0])
        # Must not raise; NaN/Inf are treated as zero for the rank query.
        assert isinstance(hess.numerical_rank(), int)

    def test_empty_matrix_queries(self):
        hess = HessenbergMatrix(3, beta=1.0)
        assert hess.numerical_rank() == 0
        assert hess.smallest_singular_value() == 0.0
        assert hess.bandwidth() == 0
        assert hess.is_tridiagonal()
