"""The sharded supervisor, its chaos harness, and the shard store layout.

The acceptance bar: a sharded campaign whose workers are murdered mid-run
by :class:`~repro.faults.chaos.ChaosPolicy` completes via supervisor
restarts with zero lost and zero duplicated trials, its merged result
trial-identical to an undisturbed serial reference; a poison trial is
quarantined as an error record after ``max_retries`` without wedging its
shard.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import run_campaign
from repro.exec.executor import BackendKnobError, CampaignExecutor
from repro.exec.spec import TrialSpec
from repro.exec.supervisor import (
    DEFAULT_MAX_RETRIES,
    ShardedSupervisor,
    SupervisorDrained,
    partition_shards,
    read_heartbeat,
    write_heartbeat,
)
from repro.faults.campaign import FaultCampaign, TrialRecord
from repro.faults.chaos import ChaosError, ChaosPolicy
from repro.gallery.problems import poisson_problem
from repro.results.store import (
    RunManifest,
    RunStore,
    RunStoreError,
    read_trial_file,
    shard_dir_name,
)
from repro.specs import CampaignSpec, ExecutionSpec, SpecError

# A tiny campaign: 3 fault classes x 7 locations = 21 trials, ~1 s serial.
BASE = dict(problem="poisson:8", inner_iterations=10, max_outer=30, stride=6)


def spec_with(**exec_knobs) -> dict:
    return dict(BASE, exec=exec_knobs)


@pytest.fixture(scope="module")
def serial_reference():
    """The undisturbed serial run every chaos result must equal."""
    return run_campaign(spec=spec_with(backend="serial"))


# ---------------------------------------------------------------------- #
# shard partitioning (hypothesis)
# ---------------------------------------------------------------------- #
def _specs(n: int) -> list[TrialSpec]:
    return [TrialSpec(index=i, fault_class="none", aggregate_inner_iteration=i)
            for i in range(n)]


class TestPartitionShards:
    @given(n=st.integers(min_value=0, max_value=200),
           shards=st.integers(min_value=1, max_value=32))
    @settings(max_examples=200, deadline=None)
    def test_disjoint_covering_ordered(self, n, shards):
        specs = _specs(n)
        blocks = partition_shards(specs, shards)
        assert len(blocks) == shards
        flat = [spec for block in blocks for spec in block]
        assert flat == specs  # covering, disjoint, order-preserving

    @given(n=st.integers(min_value=1, max_value=200),
           shards=st.integers(min_value=1, max_value=32))
    @settings(max_examples=200, deadline=None)
    def test_balanced(self, n, shards):
        sizes = [len(block) for block in partition_shards(_specs(n), shards)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == n

    @given(n=st.integers(min_value=1, max_value=100),
           shards=st.integers(min_value=1, max_value=8),
           data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_stable_under_resume(self, n, shards, data):
        """Re-partitioning any casualty subset is deterministic."""
        specs = _specs(n)
        keep = data.draw(st.sets(st.integers(0, n - 1)))
        remaining = [s for s in specs if s.index in keep]
        once = partition_shards(remaining, shards)
        again = partition_shards(list(remaining), shards)
        assert once == again

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="shards must be positive"):
            partition_shards(_specs(3), 0)


# ---------------------------------------------------------------------- #
# heartbeats
# ---------------------------------------------------------------------- #
class TestHeartbeats:
    def test_round_trip_and_tolerant_read(self, tmp_path):
        path = str(tmp_path / "heartbeat.json")
        assert read_heartbeat(path) is None
        write_heartbeat(path, {"pid": 1, "current_index": 7})
        assert read_heartbeat(path)["current_index"] == 7
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{torn")
        assert read_heartbeat(path) is None  # unreadable, never raises


# ---------------------------------------------------------------------- #
# chaos kill-points: merged result must be trial-identical to serial
# ---------------------------------------------------------------------- #
FIRST, MID, LAST = 0, 10, 20  # trial indices in the 21-trial campaign

CHAOS_CASES = {
    "sigkill-first-trial": ChaosPolicy(kill_before={FIRST: 1}),
    "sigkill-mid-shard": ChaosPolicy(kill_before={MID: 1}),
    "sigkill-last-trial": ChaosPolicy(kill_before={LAST: 1}),
    "sigkill-during-append": ChaosPolicy(kill_during_append={MID: 1}),
    "sigkill-after-append": ChaosPolicy(kill_after_append={MID: 1}),
    "raise-mid-shard": ChaosPolicy(raise_before={MID: 1}),
    "two-shards-hit": ChaosPolicy(kill_before={FIRST: 1, LAST: 1},
                                  kill_after_append={MID: 1}),
}


class TestChaosKillPoints:
    @pytest.mark.parametrize("case", sorted(CHAOS_CASES))
    def test_merged_result_is_trial_identical(self, case, serial_reference,
                                              tmp_path):
        store = RunStore(tmp_path)
        result = run_campaign(spec=spec_with(shards=2), store=store,
                              run_id="chaos", chaos=CHAOS_CASES[case])
        assert result.trials == serial_reference.trials  # zero lost, zero dup
        assert [t.status for t in result.trials] == \
            [t.status for t in serial_reference.trials]
        assert [t.outer_iterations for t in result.trials] == \
            [t.outer_iterations for t in serial_reference.trials]
        # the run completed: shards were compacted into the flat layout
        assert store.shard_ids("chaos") == []
        assert store.manifest("chaos").status == "complete"
        loaded = store.load_result("chaos")
        assert loaded.trials == serial_reference.trials

    def test_kill_before_counts_a_retry(self, serial_reference, tmp_path):
        result = run_campaign(spec=spec_with(shards=2),
                              store=RunStore(tmp_path), run_id="r",
                              chaos=ChaosPolicy(kill_before={MID: 1}))
        assert result.trials == serial_reference.trials
        assert result.query().retry_count() == 1
        (retried,) = [t for t in result.trials if t.retries]
        assert retried.status != "error"  # the retry healed it

    def test_kill_after_durable_append_never_duplicates(self, serial_reference,
                                                        tmp_path):
        """A kill after the append landed blames nobody and re-runs nothing."""
        result = run_campaign(spec=spec_with(shards=2),
                              store=RunStore(tmp_path), run_id="r",
                              chaos=ChaosPolicy(kill_after_append={MID: 1}))
        assert result.trials == serial_reference.trials
        assert result.query().retry_count() == 0

    def test_storeless_sharded_campaign(self, serial_reference):
        """Without a store the shard files live in an ephemeral temp dir."""
        result = run_campaign(spec=spec_with(shards=2),
                              chaos=ChaosPolicy(kill_before={MID: 1}))
        assert result.trials == serial_reference.trials


# ---------------------------------------------------------------------- #
# quarantine
# ---------------------------------------------------------------------- #
class TestQuarantine:
    def test_poison_trial_quarantined_without_wedging_shard(
            self, serial_reference, tmp_path):
        store = RunStore(tmp_path)
        # kill trial MID's worker more times than max_retries allows
        result = run_campaign(spec=spec_with(shards=2, max_retries=2),
                              store=store, run_id="p",
                              chaos=ChaosPolicy(kill_before={MID: 5}))
        poison = [t for t in result.trials if t.status == "error"]
        assert len(poison) == 1
        assert poison[0].error.startswith("poison")
        assert poison[0].retries == 2
        # every OTHER trial in the poisoned shard still completed
        healthy = [t for t in result.trials if t.status != "error"]
        assert len(healthy) == len(serial_reference.trials) - 1
        # bookkeeping surfaced in the summary and the manifest
        totals = result.summary()
        assert sum(row["quarantined"] for row in totals.values()) == 1
        assert sum(row["errors"] for row in totals.values()) == 1
        supervisor = store.manifest("p").extra["supervisor"]
        assert supervisor["quarantined"] == [MID]
        assert supervisor["retries"] == {str(MID): 2}

    def test_chaos_free_resume_heals_the_poison_trial(self, serial_reference,
                                                      tmp_path):
        store = RunStore(tmp_path)
        run_campaign(spec=spec_with(shards=2, max_retries=2), store=store,
                     run_id="p", chaos=ChaosPolicy(kill_before={MID: 5}))
        healed = run_campaign(spec=spec_with(shards=2, max_retries=2),
                              store=store, run_id="p", resume=True)
        assert healed.trials == serial_reference.trials
        assert store.shard_ids("p") == []  # compacted after completion

    def test_default_max_retries(self):
        campaign = FaultCampaign(poisson_problem(8), inner_iterations=10,
                                 max_outer=30)
        supervisor = ShardedSupervisor(campaign.to_config(), shards=2)
        assert supervisor.max_retries == DEFAULT_MAX_RETRIES


# ---------------------------------------------------------------------- #
# hard timeouts
# ---------------------------------------------------------------------- #
class TestHardTimeout:
    def test_sharded_backend_kills_stuck_worker(self, serial_reference,
                                                tmp_path):
        store = RunStore(tmp_path)
        result = run_campaign(
            spec=spec_with(shards=2, trial_timeout=0.5), store=store,
            run_id="h", chaos=ChaosPolicy(hang_before={MID: 60.0}))
        (timed_out,) = [t for t in result.trials if t.status == "error"]
        assert timed_out.error.startswith("hard timeout")
        assert len(result.trials) == len(serial_reference.trials)
        # resume (the hang is one-shot chaos) heals the casualty
        healed = run_campaign(spec=spec_with(shards=2, trial_timeout=0.5),
                              store=store, run_id="h", resume=True)
        assert healed.trials == serial_reference.trials

    def test_process_backend_hard_enforces_trial_timeout(self,
                                                         serial_reference):
        """Satellite 1: process + trial_timeout routes through the supervisor."""
        result = run_campaign(
            spec=spec_with(backend="process", workers=2, trial_timeout=0.5),
            chaos=ChaosPolicy(hang_before={MID: 60.0}))
        (timed_out,) = [t for t in result.trials if t.status == "error"]
        assert timed_out.error.startswith("hard timeout")
        healthy = [t for t in result.trials if t.status != "error"]
        assert len(healthy) == len(serial_reference.trials) - 1

    def test_serial_backend_keeps_the_soft_check(self):
        result = run_campaign(spec=spec_with(backend="serial",
                                             trial_timeout=1e-9))
        assert all(t.status == "error" for t in result.trials)
        assert all(t.error.startswith("soft timeout") for t in result.trials)


# ---------------------------------------------------------------------- #
# drain
# ---------------------------------------------------------------------- #
class TestDrain:
    def test_programmatic_drain_checkpoints_every_shard(self, tmp_path):
        campaign = FaultCampaign(poisson_problem(8), inner_iterations=10,
                                 max_outer=30)
        plan = campaign.plan(stride=6)
        supervisor = ShardedSupervisor(campaign.to_config(), shards=2,
                                       run_dir=str(tmp_path),
                                       provenance=dict(campaign.provenance))
        yielded = []
        with pytest.raises(SupervisorDrained):
            for index, _ in supervisor.iter_records(plan.specs):
                yielded.append(index)
                if len(yielded) == 4:
                    supervisor.request_drain()
        assert 4 <= len(yielded) < len(plan.specs)
        durable = []
        for shard in (0, 1):
            path = os.path.join(str(tmp_path), shard_dir_name(shard),
                                "trials.jsonl")
            pairs, _, torn = read_trial_file(path)
            assert not torn  # drain healed any partial tail
            durable.extend(index for index, _ in pairs)
        # exactly the yielded records are durable: nothing lost, nothing extra
        assert sorted(durable) == sorted(yielded)

    def test_sigterm_drains_and_resume_reruns_only_casualties(self, tmp_path):
        """SIGTERM mid-campaign = graceful checkpoint + exit; resume finishes."""
        script = """
import os, signal, sys
from repro.api import run_campaign
store_dir = sys.argv[1]
spec = {"problem": "poisson:8", "inner_iterations": 10, "max_outer": 30,
        "stride": 2, "exec": {"shards": 2}}

def progress(done, total):
    if done == 5:  # mid-campaign: ask for a graceful drain
        os.kill(os.getpid(), signal.SIGTERM)

run_campaign(spec=spec, store=store_dir, run_id="drain", progress=progress)
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(__file__), "..", "src"),
             env.get("PYTHONPATH", "")])
        proc = subprocess.run([sys.executable, "-c", script, str(tmp_path)],
                              env=env, timeout=120, capture_output=True)
        assert proc.returncode == -signal.SIGTERM  # re-delivered after drain
        store = RunStore(tmp_path)
        assert store.manifest("drain").status == "running"
        checkpointed = len(store.completed_indices("drain"))
        assert checkpointed > 0  # something durable survived the SIGTERM
        serial = run_campaign(spec=dict(BASE, stride=2,
                                        exec={"backend": "serial"}))
        assert checkpointed < len(serial.trials)  # ... but not everything
        resumed = run_campaign(spec=dict(BASE, stride=2,
                                         exec={"shards": 2}),
                               store=store, run_id="drain", resume=True)
        assert resumed.trials == serial.trials
        assert store.manifest("drain").status == "complete"


# ---------------------------------------------------------------------- #
# the shard store layout
# ---------------------------------------------------------------------- #
def _record(index: int, *, status: str = "converged",
            spec_hash: str | None = "hash", error: str | None = None,
            retries: int = 0) -> TrialRecord:
    return TrialRecord(
        fault_class="none", fault_description="none",
        aggregate_inner_iteration=index, mgs_position="inner",
        outer_iterations=-1 if status == "error" else 3,
        total_inner_iterations=-1 if status == "error" else 30,
        converged=status != "error", status=status,
        residual_norm=float("nan") if status == "error" else 1e-11,
        faults_injected=1, faults_detected=0, detector_enabled=False,
        error=error, spec_hash=spec_hash, retries=retries)


def _manifest(run_id: str, total: int) -> RunManifest:
    return RunManifest(
        run_id=run_id, spec={}, spec_hash="hash", problem_name="p",
        repro_version="0", seed=None, mgs_position="inner",
        inner_iterations=10, detector_enabled=False, failure_free_outer=3,
        failure_free_residual=1e-11, locations=list(range(total)),
        fault_classes=["none"], total_trials=total)


def _write_shard(store: RunStore, run_id: str, shard: int, rows: list,
                 torn_tail: bytes = b"") -> str:
    shard_dir = store.shard_path(run_id, shard)
    os.makedirs(shard_dir, exist_ok=True)
    path = os.path.join(shard_dir, "trials.jsonl")
    with open(path, "ab") as handle:
        for index, record in rows:
            handle.write((json.dumps({"index": index, **record.to_dict()})
                          + "\n").encode("utf-8"))
        handle.write(torn_tail)
    return path


class TestShardStore:
    def test_read_trials_merges_shards(self, tmp_path):
        store = RunStore(tmp_path)
        store.write_manifest(_manifest("m", 4))
        _write_shard(store, "m", 0, [(0, _record(0)), (1, _record(1))])
        _write_shard(store, "m", 1, [(2, _record(2)), (3, _record(3))])
        pairs, torn = store.read_trials("m")
        assert [index for index, _ in pairs] == [0, 1, 2, 3]
        assert not torn
        assert store.completed_indices("m") == {0, 1, 2, 3}

    def test_recover_truncates_torn_tails_per_shard(self, tmp_path):
        store = RunStore(tmp_path)
        store.write_manifest(_manifest("m", 4))
        clean = _write_shard(store, "m", 0, [(0, _record(0))])
        torn = _write_shard(store, "m", 1, [(1, _record(1))],
                            torn_tail=b'{"index": 2, "half')
        clean_size = os.path.getsize(clean)
        pairs = store.recover("m")
        assert [index for index, _ in pairs] == [0, 1]
        assert os.path.getsize(clean) == clean_size  # untouched
        reread, _, still_torn = read_trial_file(torn)
        assert not still_torn and len(reread) == 1  # healed

    def test_merge_shards_compacts_and_is_idempotent(self, tmp_path):
        store = RunStore(tmp_path)
        store.write_manifest(_manifest("m", 3))
        _write_shard(store, "m", 0,
                     [(1, _record(1, status="error", error="crash")),
                      (0, _record(0))])
        _write_shard(store, "m", 1, [(2, _record(2)), (1, _record(1))])
        assert store.merge_shards("m") == 2
        assert store.shard_ids("m") == []
        pairs, torn = store.read_trials("m")
        # flat layout, canonical index order, error superseded
        assert [index for index, _ in pairs] == [0, 1, 2]
        assert all(record.status != "error" for _, record in pairs)
        assert store.merge_shards("m") == 0  # idempotent no-op

    def test_merge_shards_refuses_foreign_records(self, tmp_path):
        store = RunStore(tmp_path)
        store.write_manifest(_manifest("m", 1))
        _write_shard(store, "m", 0, [(0, _record(0, spec_hash="other"))])
        with pytest.raises(RunStoreError, match="different campaign"):
            store.merge_shards("m")

    def test_error_then_success_supersedes_in_either_order(self, tmp_path):
        store = RunStore(tmp_path)
        store.write_manifest(_manifest("m", 1))
        # the SUCCESS lands in a lower-numbered shard than the stale error
        # (a resume re-partitions casualties): success is read FIRST
        _write_shard(store, "m", 0, [(0, _record(0))])
        _write_shard(store, "m", 3,
                     [(0, _record(0, status="error", error="crash"))])
        assert store.completed_indices("m") == {0}
        store.merge_shards("m")
        pairs, _ = store.read_trials("m")
        assert len(pairs) == 1 and pairs[0][1].status != "error"

    def test_duplicate_successes_still_rejected(self, tmp_path):
        store = RunStore(tmp_path)
        store.write_manifest(_manifest("m", 1))
        _write_shard(store, "m", 0, [(0, _record(0))])
        _write_shard(store, "m", 1, [(0, _record(0))])
        with pytest.raises(RunStoreError, match="duplicate trial index"):
            store.completed_indices("m")


# ---------------------------------------------------------------------- #
# chaos policy mechanics
# ---------------------------------------------------------------------- #
class TestChaosPolicy:
    def test_firings_are_one_shot_across_restarts(self, tmp_path):
        chaos = ChaosPolicy(raise_before={3: 2}).bound_to(str(tmp_path))
        fired = 0
        for _ in range(5):  # five "worker lifetimes"
            try:
                chaos.on_trial_start(3)
            except ChaosError:
                fired += 1
        assert fired == 2  # times=2 means exactly two firings, ever

    def test_unbound_policy_refuses_to_fire(self):
        with pytest.raises(RuntimeError, match="unbound"):
            ChaosPolicy(kill_before={0: 1}).on_trial_start(0)

    def test_schedules_validate(self):
        with pytest.raises(ValueError, match="times must be >= 1"):
            ChaosPolicy(kill_before={0: 0})
        with pytest.raises(ValueError, match="heartbeat_delay"):
            ChaosPolicy(heartbeat_delay=-1.0)


# ---------------------------------------------------------------------- #
# reliability surfaced in analysis
# ---------------------------------------------------------------------- #
class TestQueryReliability:
    def test_errors_and_retry_count(self):
        from repro.results.query import TrialQuery

        records = [_record(0), _record(1, status="error", error="crash",
                                       retries=2),
                   _record(2, status="error", error="poison: dead"),
                   _record(3, retries=1)]
        q = TrialQuery(records)
        assert len(q.errors()) == 2
        assert q.retry_count() == 3
        assert q.errors().count(
            lambda t: (t.error or "").startswith("poison")) == 1


# ---------------------------------------------------------------------- #
# plumbing: spec, knob validation, registry, CLI
# ---------------------------------------------------------------------- #
class TestPlumbing:
    def test_execution_spec_round_trip(self):
        spec = ExecutionSpec(backend="sharded", shards=4, max_retries=2,
                             heartbeat_interval=0.05)
        assert ExecutionSpec.from_dict(spec.to_dict()) == spec
        kwargs = spec.executor_kwargs()
        assert kwargs["shards"] == 4
        assert kwargs["max_retries"] == 2
        assert kwargs["heartbeat_interval"] == 0.05

    def test_shards_auto_selects_sharded_backend(self):
        campaign = FaultCampaign(poisson_problem(8), inner_iterations=10,
                                 max_outer=30)
        executor = CampaignExecutor(campaign, shards=2)
        assert executor.backend == "sharded"

    def test_knob_conflicts_rejected(self):
        campaign = FaultCampaign(poisson_problem(8), inner_iterations=10,
                                 max_outer=30)
        with pytest.raises(BackendKnobError, match="mutually exclusive"):
            CampaignExecutor(campaign, shards=2, batch_size=4)
        with pytest.raises(BackendKnobError, match="mutually exclusive"):
            CampaignExecutor(campaign, shards=2, workers=4)
        with pytest.raises(BackendKnobError, match="sharded"):
            CampaignExecutor(campaign, backend="process", shards=2)
        with pytest.raises(BackendKnobError, match="sharded"):
            CampaignExecutor(campaign, max_retries=3)
        with pytest.raises(BackendKnobError, match="sharded"):
            CampaignExecutor(campaign, backend="serial", heartbeat_interval=0.1)

    def test_spec_layer_rejects_conflicts_too(self):
        with pytest.raises(SpecError):
            ExecutionSpec(backend="batched", shards=2)
        with pytest.raises(SpecError):
            ExecutionSpec(shards=0)
        with pytest.raises(SpecError):
            ExecutionSpec(backend="sharded", heartbeat_interval=0.0)

    def test_registry_metadata(self):
        from repro.registry import backend_knobs

        assert backend_knobs("sharded") == ("shards", "max_retries",
                                            "heartbeat_interval")

    def test_runner_flags_map_to_exec_spec(self):
        from repro.experiments.runner import build_parser, build_campaign_spec

        parser = build_parser()
        args = parser.parse_args(
            ["fig3", "--shards", "3", "--max-retries", "2",
             "--heartbeat-interval", "0.2", "--backend", "sharded"])
        spec = build_campaign_spec(args)
        assert spec.exec.backend == "sharded"
        assert spec.exec.shards == 3
        assert spec.exec.max_retries == 2
        assert spec.exec.heartbeat_interval == 0.2

    def test_campaign_spec_accepts_supervisor_knobs(self):
        spec = CampaignSpec.coerce(dict(BASE, exec={"shards": 2,
                                                    "max_retries": 5}))
        assert spec.exec.shards == 2
        assert spec.exec.max_retries == 5
