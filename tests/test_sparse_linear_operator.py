"""Unit tests for the LinearOperator abstraction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix
from repro.sparse.coo import COOMatrix
from repro.sparse.linear_operator import (
    LinearOperator,
    MatrixFreeOperator,
    aslinearoperator,
)


class TestAsLinearOperator:
    def test_csr(self, poisson_small, rng):
        op = aslinearoperator(poisson_small)
        x = rng.standard_normal(op.n)
        np.testing.assert_allclose(op.matvec(x), poisson_small.matvec(x))
        np.testing.assert_allclose(op.rmatvec(x), poisson_small.rmatvec(x))

    def test_coo(self, rng):
        dense = rng.standard_normal((6, 6))
        coo = COOMatrix.from_dense(dense)
        op = aslinearoperator(coo)
        x = rng.standard_normal(6)
        np.testing.assert_allclose(op.matvec(x), dense @ x, rtol=1e-13)

    def test_dense(self, small_dense, rng):
        op = aslinearoperator(small_dense)
        x = rng.standard_normal(12)
        np.testing.assert_allclose(op.matvec(x), small_dense @ x)
        np.testing.assert_allclose(op.rmatvec(x), small_dense.T @ x)

    def test_scipy(self, poisson_small, rng):
        op = aslinearoperator(poisson_small.to_scipy())
        x = rng.standard_normal(op.n)
        np.testing.assert_allclose(op.matvec(x), poisson_small.matvec(x))

    def test_passthrough(self, poisson_small):
        op = aslinearoperator(poisson_small)
        assert aslinearoperator(op) is op

    def test_rejects_unknown(self):
        with pytest.raises(TypeError):
            aslinearoperator("not a matrix")

    def test_rejects_bad_dense_shape(self):
        with pytest.raises(ValueError):
            aslinearoperator(np.ones((2, 2, 2)))

    def test_matmul_protocol(self, small_dense, rng):
        op = aslinearoperator(small_dense)
        x = rng.standard_normal(12)
        np.testing.assert_allclose(op @ x, small_dense @ x)


class TestMatrixFreeOperator:
    def test_matvec(self, rng):
        diag = rng.random(10) + 1.0
        op = MatrixFreeOperator((10, 10), matvec=lambda x: diag * x,
                                rmatvec=lambda x: diag * x)
        x = rng.standard_normal(10)
        np.testing.assert_allclose(op.matvec(x), diag * x)
        np.testing.assert_allclose(op.rmatvec(x), diag * x)

    def test_shape_checked(self):
        op = MatrixFreeOperator((5, 5), matvec=lambda x: x[:3])
        with pytest.raises(ValueError, match="length"):
            op.matvec(np.ones(5))

    def test_missing_rmatvec(self):
        op = MatrixFreeOperator((4, 4), matvec=lambda x: x)
        with pytest.raises(NotImplementedError):
            op.rmatvec(np.ones(4))

    def test_base_class_abstract(self):
        op = LinearOperator()
        with pytest.raises(NotImplementedError):
            op.matvec(np.ones(3))

    def test_n_property(self):
        op = MatrixFreeOperator((7, 4), matvec=lambda x: np.zeros(7))
        assert op.n == 4
        assert op.shape == (7, 4)
