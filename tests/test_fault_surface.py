"""The whole-solver fault surface: sites, models, rate schedules, isolation.

Covers the robustness additions as one surface:

* first-class injection sites (``spmv``/``precond``/``givens``/``orth``)
  wired through the solvers with real iteration context;
* the multi-bit / burst / stuck-at fault models and their uniform
  ``to_spec``/``from_spec`` round-trip through the registry;
* rate-based schedules (N faults per solve, per-site persistence);
* crash-isolated campaign trials: error records, soft timeouts, and
  resume re-running exactly the casualties;
* cross-backend trial identity at every site.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import registry
from repro.core.fgmres import fgmres
from repro.core.gmres import gmres
from repro.core.status import SolverStatus
from repro.exec.spec import TrialSpec
from repro.faults.campaign import FaultCampaign, TrialRecord
from repro.faults.injector import FaultInjector
from repro.faults.models import (
    AbsoluteFault,
    AdditiveFault,
    BitFlipFault,
    BurstFault,
    FaultModel,
    InfFault,
    MultiBitFault,
    NaNFault,
    ScalingFault,
    StuckAtFault,
    ZeroFault,
)
from repro.faults.schedule import KNOWN_SITES, FaultRateSchedule, InjectionSchedule
from repro.faults.targets import FaultyOperator, FaultyPreconditioner
from repro.gallery.problems import poisson_problem
from repro.precond.jacobi import JacobiPreconditioner
from repro.registry import resolve_fault_model
from repro.specs import CampaignSpec, ExecutionSpec, SpecError


@pytest.fixture(scope="module")
def tiny_problem():
    return poisson_problem(grid_n=8, seed=7)


@pytest.fixture
def rng():
    return np.random.default_rng(11)


# --------------------------------------------------------------------------- #
# fault model spec round-trips (every registered model, uniform dict shape)
# --------------------------------------------------------------------------- #
class TestModelSpecRoundTrip:
    #: One representative instance per registered fault model.
    INSTANCES = [
        ScalingFault(1e150),
        AbsoluteFault(3.5),
        AdditiveFault(-2.0),
        ZeroFault(),
        NaNFault(),
        InfFault(),
        BitFlipFault(bit=51),
        MultiBitFault(bits=(1, 30, 62)),
        BurstFault(start_bit=40, width=8),
        StuckAtFault(bit=62, value=0),
    ]

    def test_every_registered_model_is_covered(self):
        covered = {m.name for m in self.INSTANCES}
        assert covered == set(registry.names("fault_model"))

    @pytest.mark.parametrize("model", INSTANCES, ids=lambda m: m.name)
    def test_to_spec_is_a_dict_with_name(self, model):
        spec = model.to_spec()
        assert isinstance(spec, dict)
        assert spec["name"] == model.name

    @pytest.mark.parametrize("model", INSTANCES, ids=lambda m: m.name)
    def test_round_trip_preserves_spec(self, model):
        rebuilt = resolve_fault_model(model.to_spec())
        assert type(rebuilt) is type(model)
        assert rebuilt.to_spec() == model.to_spec()

    @pytest.mark.parametrize("model", INSTANCES, ids=lambda m: m.name)
    def test_round_trip_corrupts_identically(self, model):
        import struct

        rebuilt = resolve_fault_model(model.to_spec())
        for value in (1.0, -0.3, 1e-12, 7.25e8):
            # Bit-pattern equality: corruption may legitimately yield NaN.
            assert struct.pack("<d", rebuilt.corrupt(value)) == \
                struct.pack("<d", model.corrupt(value))

    def test_campaign_spec_carries_new_models(self):
        spec = CampaignSpec(fault_classes={
            "mb": {"name": "multibit", "bits": [1, 5]},
            "bu": "burst:40:8",
            "sa": {"name": "stuck_at", "bit": 10, "value": 0},
        })
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again == spec


class TestNewModels:
    def test_multibit_explicit_bits_is_deterministic_involution(self):
        model = MultiBitFault(bits=(2, 17, 52))
        corrupted = model.corrupt(3.75)
        assert corrupted == model.corrupt(3.75)
        assert model.corrupt(corrupted) == 3.75  # flipping twice restores

    def test_multibit_rejects_duplicate_bits(self):
        with pytest.raises(ValueError, match="distinct"):
            MultiBitFault(bits=(3, 3))

    def test_burst_is_involution(self):
        model = BurstFault(start_bit=50, width=6)
        assert model.bits == tuple(range(50, 56))
        assert model.corrupt(model.corrupt(-11.5)) == -11.5

    def test_burst_clips_at_bit_63(self):
        assert BurstFault(start_bit=61, width=10).bits == (61, 62, 63)

    def test_stuck_at_is_idempotent(self):
        model = StuckAtFault(bit=62, value=1)
        once = model.corrupt(1.0)
        assert model.corrupt(once) == once

    def test_stuck_at_conforming_value_is_noop(self):
        # 1.0 = 0x3FF0...: exponent bit 61 is already set, the sign bit is
        # already clear — a conforming stuck-at is invisible.
        assert StuckAtFault(bit=61, value=1).corrupt(1.0) == 1.0
        assert StuckAtFault(bit=63, value=0).corrupt(1.0) == 1.0


# --------------------------------------------------------------------------- #
# property-based: bit-level corruption never breaks the status taxonomy
# --------------------------------------------------------------------------- #
def _bit_models():
    return st.one_of(
        st.lists(st.integers(0, 63), min_size=1, max_size=4, unique=True)
          .map(lambda bits: MultiBitFault(bits=tuple(bits))),
        st.tuples(st.integers(0, 63), st.integers(1, 8))
          .map(lambda t: BurstFault(start_bit=t[0], width=t[1])),
        st.tuples(st.integers(0, 63), st.integers(0, 1))
          .map(lambda t: StuckAtFault(bit=t[0], value=t[1])),
    )


class TestCorruptionProperties:
    @given(model=_bit_models(),
           value=st.floats(allow_nan=False, allow_infinity=False, width=64))
    @settings(max_examples=200, deadline=None)
    def test_corrupt_returns_a_float(self, model, value):
        out = model.corrupt(value)
        assert isinstance(out, float)  # NaN/Inf allowed; crashes are not

    @given(model=_bit_models(), location=st.integers(0, 7),
           value_seed=st.integers(0, 2**16))
    @settings(max_examples=20, deadline=None)
    def test_solver_status_taxonomy_survives_bit_corruption(
            self, model, location, value_seed):
        """Any bit-level corruption lands in the status trichotomy.

        Exponent-bit faults produce Inf/NaN mid-solve; the solver must
        terminate with a *valid* status — converged, budget exhausted, or a
        loud breakdown — never crash or report a converged solve with a
        non-finite residual.
        """
        problem = poisson_problem(grid_n=4, seed=value_seed % 13 + 1)
        campaign = FaultCampaign(problem, inner_iterations=4, max_outer=6,
                                 fault_classes={"m": model}, site="hessenberg")
        record = campaign.run_spec(TrialSpec(0, "m", location))
        assert record.status in {s.value for s in SolverStatus}
        if record.converged:
            assert np.isfinite(record.residual_norm)


# --------------------------------------------------------------------------- #
# rate schedules
# --------------------------------------------------------------------------- #
class TestFaultRateSchedule:
    def test_cadence(self):
        sched = FaultRateSchedule(site="hessenberg", faults_per_solve=3,
                                  start=2, interval=10, mgs_position=None)
        hits = [k for k in range(40)
                if sched.matches("hessenberg", aggregate_inner_iteration=k)]
        assert hits == [2, 12, 22, 32]  # cadence; the *count* cap is the
        assert sched.max_injections == 3  # injector's job, enforced below

    def test_injector_honors_faults_per_solve(self, tiny_problem):
        campaign = FaultCampaign(tiny_problem, inner_iterations=10, max_outer=30,
                                 site="hessenberg", fault_rate=3)
        record = campaign.run_spec(TrialSpec(0, "near_zero", 4))
        assert record.faults_injected == 3

    def test_rate_one_matches_single_schedule_campaign(self, tiny_problem):
        base = FaultCampaign(tiny_problem, inner_iterations=10, max_outer=30)
        rated = FaultCampaign(tiny_problem, inner_iterations=10, max_outer=30,
                              fault_rate=1)
        assert rated.run_spec(TrialSpec(0, "near_zero", 7)) == \
            base.run_spec(TrialSpec(0, "near_zero", 7))

    def test_multi_site_schedule(self):
        sched = InjectionSchedule(site="spmv,precond", mgs_position=None)
        assert sched.matches_site("spmv")
        assert sched.matches_site("precond")
        assert not sched.matches_site("hessenberg")

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown injection site"):
            InjectionSchedule(site="spmv,frobnicator")

    def test_per_site_sticky_windows_are_independent(self):
        injector = FaultInjector(
            ScalingFault(2.0),
            InjectionSchedule(site="spmv,precond", persistence="sticky",
                              sticky_count=2, max_injections=10,
                              mgs_position=None),
            vector_index=0)
        vec = np.ones(4)
        fired = {"spmv": 0, "precond": 0}
        for site in ("spmv", "spmv", "spmv", "precond", "precond", "precond"):
            out = injector.corrupt_vector(site, vec,
                                          aggregate_inner_iteration=0)
            if out is not vec:
                fired[site] += 1
        # Each site gets its own sticky window of 2; spmv exhausting its
        # window must not consume precond's.
        assert fired == {"spmv": 2, "precond": 2}


# --------------------------------------------------------------------------- #
# new sites are native in the solvers
# --------------------------------------------------------------------------- #
def _site_injector(site, model=None, **sched_kwargs):
    sched_kwargs.setdefault("mgs_position", None)
    return FaultInjector(model or ScalingFault(10.0),
                         InjectionSchedule(site=site, **sched_kwargs),
                         vector_index=3)


class TestGMRESSites:
    def test_precond_site_fires_with_real_context(self, tiny_problem):
        injector = _site_injector("precond", aggregate_inner_iteration=2)
        result = gmres(tiny_problem.A, tiny_problem.b, tol=0.0, maxiter=6,
                       restart=6, preconditioner=JacobiPreconditioner(tiny_problem.A),
                       injector=injector)
        assert injector.injections_performed == 1
        assert injector.records[0].site == "precond"
        assert injector.records[0].inner_iteration == 2
        assert result.events.count("fault_injected") == 1

    def test_givens_site_fires_on_rotation_coefficients(self, tiny_problem):
        injector = FaultInjector(ScalingFault(0.5),
                                 InjectionSchedule(site="givens",
                                                   aggregate_inner_iteration=3,
                                                   mgs_position="first"))
        result = gmres(tiny_problem.A, tiny_problem.b, tol=0.0, maxiter=6,
                       restart=6, injector=injector)
        rec = injector.records[0]
        assert injector.injections_performed >= 1
        assert rec.site == "givens"
        assert rec.mgs_index in (0, 1)  # 0 = c, 1 = s
        assert result.events.count("fault_injected") >= 1

    def test_orth_site_fires_before_normalization(self, tiny_problem):
        injector = _site_injector("orth", aggregate_inner_iteration=1)
        gmres(tiny_problem.A, tiny_problem.b, tol=0.0, maxiter=6, restart=6,
              injector=injector)
        assert injector.injections_performed == 1
        assert injector.records[0].site == "orth"

    def test_fault_free_paths_bit_identical_with_site_injector(self, tiny_problem):
        """An injector whose schedule never fires must not perturb a bit."""
        injector = _site_injector("givens", aggregate_inner_iteration=10 ** 9)
        clean = gmres(tiny_problem.A, tiny_problem.b, tol=1e-10, maxiter=30)
        hooked = gmres(tiny_problem.A, tiny_problem.b, tol=1e-10, maxiter=30,
                       injector=injector)
        assert injector.injections_performed == 0
        np.testing.assert_array_equal(hooked.x, clean.x)
        assert hooked.residual_norm == clean.residual_norm


class TestFGMRESSites:
    @pytest.mark.parametrize("site", ["spmv", "hessenberg", "orth", "subdiag",
                                      "givens"])
    def test_outer_injection_fires(self, tiny_problem, site):
        injector = FaultInjector(
            ScalingFault(1.5),
            InjectionSchedule(site=site, aggregate_inner_iteration=1,
                              mgs_position=None),
            vector_index=2)
        result = fgmres(tiny_problem.A, tiny_problem.b,
                        inner_solver=lambda q, j: q.copy(),
                        tol=1e-10, max_outer=8, injector=injector)
        assert injector.injections_performed == 1
        assert injector.records[0].site == site
        assert result.events.count("fault_injected") == 1

    def test_no_injector_runs_fast_path(self, tiny_problem):
        clean = fgmres(tiny_problem.A, tiny_problem.b,
                       inner_solver=lambda q, j: q.copy(),
                       tol=1e-10, max_outer=8)
        idle = FaultInjector(ScalingFault(2.0),
                             InjectionSchedule(site="spmv",
                                               aggregate_inner_iteration=10 ** 9,
                                               mgs_position=None))
        hooked = fgmres(tiny_problem.A, tiny_problem.b,
                        inner_solver=lambda q, j: q.copy(),
                        tol=1e-10, max_outer=8, injector=idle)
        np.testing.assert_array_equal(hooked.x, clean.x)
        assert hooked.residual_norm == clean.residual_norm


# --------------------------------------------------------------------------- #
# wrapper context routing (satellite: FaultyOperator/FaultyPreconditioner)
# --------------------------------------------------------------------------- #
class TestWrapperContextRouting:
    def test_standalone_matvec_keeps_call_count_coordinates(self, tiny_problem,
                                                            rng):
        """The legacy black-box contract, bit for bit: call N is iteration N."""
        x = rng.standard_normal(tiny_problem.A.shape[0])
        injector = _site_injector("spmv", aggregate_inner_iteration=1)
        faulty = FaultyOperator(tiny_problem.A, injector)
        clean = tiny_problem.A.matvec(x)
        np.testing.assert_array_equal(faulty.matvec(x), clean)
        assert not np.array_equal(faulty.matvec(x), clean)
        rec = injector.records[0]
        assert (rec.outer_iteration, rec.inner_iteration) == (-1, 1)

    def test_in_solver_wrapper_sees_real_iterations(self, tiny_problem):
        """Inside gmres the wrapper must inject by Arnoldi step, not call count.

        gmres performs a non-Arnoldi matvec for the initial residual; with
        raw call counts a schedule pinned to iteration 2 would fire during
        Arnoldi step 1.  Context routing must report the real step.
        """
        injector = _site_injector("spmv", aggregate_inner_iteration=2)
        faulty = FaultyOperator(tiny_problem.A, injector)
        gmres(faulty, tiny_problem.b, tol=0.0, maxiter=6, restart=6)
        assert injector.injections_performed == 1
        assert injector.records[0].inner_iteration == 2

    def test_wrapper_matches_native_spmv_site(self, tiny_problem):
        """Wrapped and native spmv injection are the same experiment."""
        native = _site_injector("spmv", aggregate_inner_iteration=2)
        wrapped = _site_injector("spmv", aggregate_inner_iteration=2)
        res_native = gmres(tiny_problem.A, tiny_problem.b, tol=0.0, maxiter=6,
                           restart=6, injector=native)
        res_wrapped = gmres(FaultyOperator(tiny_problem.A, wrapped),
                            tiny_problem.b, tol=0.0, maxiter=6, restart=6)
        np.testing.assert_array_equal(res_wrapped.x, res_native.x)
        assert res_wrapped.residual_norm == res_native.residual_norm

    def test_in_solver_preconditioner_wrapper_sees_real_iterations(
            self, tiny_problem):
        injector = _site_injector("precond", aggregate_inner_iteration=3)
        faulty = FaultyPreconditioner(JacobiPreconditioner(tiny_problem.A),
                                      injector)
        gmres(tiny_problem.A, tiny_problem.b, tol=0.0, maxiter=6, restart=6,
              preconditioner=faulty)
        assert injector.injections_performed == 1
        assert injector.records[0].inner_iteration == 3


# --------------------------------------------------------------------------- #
# campaigns at every site, across backends
# --------------------------------------------------------------------------- #
class TestSiteCampaignsAcrossBackends:
    @pytest.fixture(scope="class", params=["spmv", "givens", "orth"])
    def site_campaign(self, request):
        problem = poisson_problem(grid_n=8, seed=7)
        return FaultCampaign(problem, inner_iterations=10, max_outer=30,
                             site=request.param)

    def test_serial_is_deterministic(self, site_campaign):
        assert site_campaign.run(stride=11).trials == \
            site_campaign.run(stride=11).trials

    def test_thread_matches_serial(self, site_campaign):
        serial = site_campaign.run(stride=11)
        thread = site_campaign.run(stride=11, backend="thread", workers=2)
        assert thread.trials == serial.trials

    def test_process_matches_serial(self, site_campaign):
        serial = site_campaign.run(stride=17)
        process = site_campaign.run(stride=17, backend="process", workers=2)
        assert process.trials == serial.trials

    @pytest.fixture(scope="class")
    def precond_campaign(self):
        from repro.core.gmres import GMRESParameters

        problem = poisson_problem(grid_n=8, seed=7)
        return FaultCampaign(
            problem, inner_iterations=10, max_outer=30, site="precond",
            inner_params=GMRESParameters(
                tol=0.0, maxiter=10,
                preconditioner=JacobiPreconditioner(problem.A)))

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_precond_site_matches_serial(self, precond_campaign, backend):
        serial = precond_campaign.run(stride=17)
        assert all(t.faults_injected >= 1 for t in serial.trials)
        parallel = precond_campaign.run(stride=17, backend=backend, workers=2)
        assert parallel.trials == serial.trials

    def test_injections_fire_at_every_site(self, site_campaign):
        result = site_campaign.run(stride=11)
        assert all(t.faults_injected >= 1 for t in result.trials)

    def test_batched_spmv_meets_equivalence_contract(self, tiny_problem):
        campaign = FaultCampaign(tiny_problem, inner_iterations=10,
                                 max_outer=30, site="spmv", detector="bound")
        serial = campaign.run(stride=11)
        batched = campaign.run(stride=11, backend="batched", batch_size=4)
        for s, b in zip(serial.trials, batched.trials):
            assert (s.fault_class, s.aggregate_inner_iteration) == \
                (b.fault_class, b.aggregate_inner_iteration)
            assert s.outer_iterations == b.outer_iterations
            assert s.total_inner_iterations == b.total_inner_iterations
            assert s.status == b.status
            assert s.faults_injected == b.faults_injected
            # The engine's documented tolerance (see test_batched_campaign).
            assert abs(s.residual_norm - b.residual_norm) <= \
                1e-10 * max(1.0, abs(s.residual_norm))

    def test_multi_site_campaign_runs(self, tiny_problem):
        campaign = FaultCampaign(tiny_problem, inner_iterations=10,
                                 max_outer=30, site="spmv,givens,orth")
        result = campaign.run(stride=17)
        assert all(t.faults_injected >= 1 for t in result.trials)


# --------------------------------------------------------------------------- #
# crash isolation: error records, soft timeouts, resume semantics
# --------------------------------------------------------------------------- #
class ExplodingFault(FaultModel):
    """Raises when armed — simulates a worker crash inside the solve."""

    name = "exploding"

    def __init__(self):
        self.armed = True
        self.corruptions = 0

    def corrupt(self, value: float) -> float:
        if self.armed:
            raise RuntimeError("simulated worker crash")
        self.corruptions += 1
        return value * 10.0

    def to_spec(self) -> dict:
        return {"name": "exploding"}


class CountingFault(ScalingFault):
    """Counts how many trials actually solved (one corruption per trial)."""

    def __init__(self):
        super().__init__(10.0 ** -0.5)
        self.corruptions = 0

    def corrupt(self, value: float) -> float:
        self.corruptions += 1
        return super().corrupt(value)


class TestCrashIsolation:
    def test_exception_becomes_error_record(self, tiny_problem):
        campaign = FaultCampaign(tiny_problem, inner_iterations=10, max_outer=30,
                                 fault_classes={"boom": ExplodingFault()})
        result = campaign.run(stride=17)
        assert result.trials, "sweep produced no trials"
        for record in result.trials:
            assert record.is_error
            assert record.status == "error"
            assert "RuntimeError" in record.error
            assert not record.converged
            assert record.outer_iterations == -1
            assert np.isnan(record.residual_norm)

    def test_error_record_round_trips_through_dict(self):
        record = TrialRecord(
            fault_class="boom", fault_description="?",
            aggregate_inner_iteration=3, mgs_position="first",
            outer_iterations=-1, total_inner_iterations=-1, converged=False,
            status="error", residual_norm=float("nan"), faults_injected=0,
            faults_detected=0, detector_enabled=False,
            error="RuntimeError: kaboom")
        again = TrialRecord.from_dict(
            {k: v for k, v in record.to_dict().items() if k != "kind"})
        assert again.is_error and again.error == record.error

    def test_thread_backend_isolates_crashes(self, tiny_problem):
        campaign = FaultCampaign(tiny_problem, inner_iterations=10, max_outer=30,
                                 fault_classes={"boom": ExplodingFault(),
                                                "ok": ScalingFault(1e-300)})
        result = campaign.run(stride=17, backend="thread", workers=2)
        by_class = {}
        for t in result.trials:
            by_class.setdefault(t.fault_class, []).append(t)
        assert all(t.is_error for t in by_class["boom"])
        assert all(not t.is_error for t in by_class["ok"])

    def test_soft_timeout_quarantines_trial(self, tiny_problem):
        campaign = FaultCampaign(tiny_problem, inner_iterations=10, max_outer=30,
                                 trial_timeout=1e-9)
        record = campaign.run_spec_safe(TrialSpec(0, "large", 3))
        assert record.is_error
        assert "soft timeout" in record.error

    def test_keyboard_interrupt_propagates(self, tiny_problem, monkeypatch):
        campaign = FaultCampaign(tiny_problem, inner_iterations=10, max_outer=30)
        monkeypatch.setattr(campaign, "run_spec",
                            lambda spec: (_ for _ in ()).throw(KeyboardInterrupt()))
        with pytest.raises(KeyboardInterrupt):
            campaign.run_spec_safe(TrialSpec(0, "large", 3))

    def test_resume_reruns_only_casualties(self, tiny_problem, tmp_path):
        """A crashed shard re-runs its casualties — and nothing else."""
        from repro.api import run_campaign
        from repro.results.store import RunStore

        boom, counter = ExplodingFault(), CountingFault()
        spec = CampaignSpec(problem="poisson:8", inner_iterations=10,
                            max_outer=30, stride=17,
                            fault_classes={"boom": boom, "ok": counter})
        store = RunStore(tmp_path)
        first = run_campaign(spec=spec, store=store, run_id="crashy")
        errored = [t for t in first.trials if t.is_error]
        assert errored and all(t.fault_class == "boom" for t in errored)
        solved_before = counter.corruptions
        assert solved_before > 0

        # The store counts only clean trials as done.
        done = store.completed_indices("crashy")
        assert len(done) == len(first.trials) - len(errored)

        boom.armed = False  # the "hardware" recovers
        second = run_campaign(spec=spec, store=store, run_id="crashy",
                              resume=True)
        assert not any(t.is_error for t in second.trials)
        assert len(second.trials) == len(first.trials)
        # Completed trials were NOT re-solved...
        assert counter.corruptions == solved_before
        # ...while every casualty was.
        assert boom.corruptions == len(errored)

        # The journal now has error records superseded by clean re-runs;
        # reading back must see exactly the resumed result.
        loaded = store.load_result("crashy")
        assert loaded.trials == second.trials

    def test_duplicate_success_records_still_rejected(self, tiny_problem,
                                                      tmp_path):
        from repro.results.store import (RunManifest, RunStore, RunStoreError)

        store = RunStore(tmp_path)
        manifest = RunManifest(
            run_id="dup", spec={}, spec_hash="x", problem_name="p",
            repro_version="0", seed=7, mgs_position="first",
            inner_iterations=10, detector_enabled=False,
            failure_free_outer=5, failure_free_residual=1e-9,
            locations=[0], fault_classes=["large"], total_trials=1,
            created_at="now")
        good = TrialRecord(
            fault_class="large", fault_description="?",
            aggregate_inner_iteration=0, mgs_position="first",
            outer_iterations=5, total_inner_iterations=50, converged=True,
            status="converged", residual_norm=1e-9, faults_injected=1,
            faults_detected=0, detector_enabled=False)
        writer = store.create_run(manifest)
        writer.append(0, good)
        writer.append(0, good)  # a raced writer, not a resumed casualty
        writer.close()
        with pytest.raises(RunStoreError, match="duplicate"):
            store.completed_indices("dup")

    def test_error_then_success_duplicates_allowed(self, tmp_path):
        from repro.results.store import RunManifest, RunStore

        store = RunStore(tmp_path)
        manifest = RunManifest(
            run_id="heal", spec={}, spec_hash="x", problem_name="p",
            repro_version="0", seed=7, mgs_position="first",
            inner_iterations=10, detector_enabled=False,
            failure_free_outer=5, failure_free_residual=1e-9,
            locations=[0], fault_classes=["large"], total_trials=1,
            created_at="now")
        bad = TrialRecord(
            fault_class="large", fault_description="?",
            aggregate_inner_iteration=0, mgs_position="first",
            outer_iterations=-1, total_inner_iterations=-1, converged=False,
            status="error", residual_norm=float("nan"), faults_injected=0,
            faults_detected=0, detector_enabled=False, error="boom")
        good = dataclasses.replace(bad, outer_iterations=5,
                                   total_inner_iterations=50, converged=True,
                                   status="converged", residual_norm=1e-9,
                                   error=None)
        writer = store.create_run(manifest)
        writer.append(0, bad)
        writer.append(0, good)
        writer.close()
        assert store.completed_indices("heal") == {0}
        loaded = store.load_result("heal")
        assert loaded.trials == [good]


# --------------------------------------------------------------------------- #
# spec / CLI plumbing
# --------------------------------------------------------------------------- #
class TestSpecPlumbing:
    def test_campaign_spec_validates_site(self):
        with pytest.raises(SpecError, match="site"):
            CampaignSpec(site="spmv,frobnicator")
        for name in KNOWN_SITES:
            CampaignSpec(site=name)  # all legal

    def test_campaign_spec_validates_fault_rate(self):
        with pytest.raises(SpecError, match="fault_rate"):
            CampaignSpec(fault_rate=0)
        with pytest.raises(SpecError, match="fault_persistence"):
            CampaignSpec(fault_persistence="forever")

    def test_exec_spec_validates_trial_timeout(self):
        with pytest.raises(SpecError, match="trial_timeout"):
            ExecutionSpec(trial_timeout=0.0)
        assert ExecutionSpec(trial_timeout=2.5).trial_timeout == 2.5

    def test_trial_timeout_not_forwarded_to_executor(self):
        # Consumed by the campaign layer, not a pool knob.
        assert "trial_timeout" not in ExecutionSpec(trial_timeout=1.0).executor_kwargs()

    def test_trial_timeout_excluded_from_fingerprint(self):
        from repro.results.store import campaign_fingerprint

        base = CampaignSpec(site="spmv")
        timed = base.replace(exec=ExecutionSpec(trial_timeout=9.0))
        assert campaign_fingerprint(base, "p") == campaign_fingerprint(timed, "p")

    def test_site_and_fault_rate_change_fingerprint(self):
        from repro.results.store import campaign_fingerprint

        base = CampaignSpec()
        assert campaign_fingerprint(base, "p") != \
            campaign_fingerprint(base.replace(site="spmv"), "p")
        assert campaign_fingerprint(base, "p") != \
            campaign_fingerprint(base.replace(fault_rate=2), "p")

    def test_cli_flags_reach_the_spec(self):
        from repro.experiments.runner import build_campaign_spec, build_parser

        args = build_parser().parse_args(
            ["fig3", "--site", "spmv,precond,givens", "--fault-rate", "2",
             "--trial-timeout", "30"])
        spec = build_campaign_spec(args)
        assert spec.site == "spmv,precond,givens"
        assert spec.fault_rate == 2
        assert spec.exec.trial_timeout == 30.0

    def test_campaign_from_spec_carries_new_knobs(self, tiny_problem):
        spec = CampaignSpec(inner_iterations=10, max_outer=30, site="spmv",
                            fault_rate=2, fault_persistence="sticky",
                            exec=ExecutionSpec(trial_timeout=60.0))
        campaign = FaultCampaign.from_spec(spec, tiny_problem)
        assert campaign.site == "spmv"
        assert campaign.fault_rate == 2
        assert campaign.fault_persistence == "sticky"
        assert campaign.trial_timeout == 60.0

    def test_config_round_trip_carries_new_knobs(self, tiny_problem):
        campaign = FaultCampaign(tiny_problem, inner_iterations=10,
                                 max_outer=30, site="spmv", fault_rate=2,
                                 fault_persistence="sticky", trial_timeout=60.0)
        rebuilt = campaign.to_config().build_campaign()
        assert rebuilt.site == campaign.site
        assert rebuilt.fault_rate == campaign.fault_rate
        assert rebuilt.fault_persistence == campaign.fault_persistence
        assert rebuilt.trial_timeout == campaign.trial_timeout
