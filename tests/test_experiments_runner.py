"""Tests for the command-line experiment runner."""

from __future__ import annotations

import pytest

from repro.experiments.runner import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiments == ["table1"]
        assert args.scale == "small"
        # Flag defaults are None sentinels: the effective values come from
        # the CampaignSpec layer (see build_campaign_spec), so the paper's
        # numbers live in exactly one place.
        assert args.stride is None
        assert args.inner_iterations is None
        assert args.config is None
        assert args.overrides == []

    def test_effective_spec_defaults(self):
        from repro.experiments.runner import DEFAULT_STRIDE, build_campaign_spec

        args = build_parser().parse_args(["fig3"])
        spec = build_campaign_spec(args, problem_key="poisson")
        assert spec.stride == DEFAULT_STRIDE
        assert spec.inner_iterations == 25
        assert spec.max_outer == 100
        circuit = build_campaign_spec(args, problem_key="circuit")
        assert circuit.max_outer == 200

    def test_multiple_experiments(self):
        args = build_parser().parse_args(["table1", "fig2", "--scale", "tiny"])
        assert args.experiments == ["table1", "fig2"]
        assert args.scale == "tiny"

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "huge"])


class TestMain:
    def test_table1_and_fig2(self, capsys):
        code = main(["table1", "fig2", "--scale", "tiny"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table I" in out
        assert "number of rows" in out
        assert "Figure 2" in out
        assert "tridiagonal=True" in out

    def test_summary_tiny(self, capsys):
        code = main(["summary", "--scale", "tiny", "--stride", "20",
                     "--inner-iterations", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Section VII-E summary" in out
        assert "worst-case increase" in out

    def test_fig3_tiny(self, capsys):
        code = main(["fig3", "--scale", "tiny", "--stride", "15",
                     "--inner-iterations", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 3" in out
        assert "fault class: large" in out


class TestSpecDrivenCLI:
    def _write_config(self, tmp_path, data):
        import json

        path = tmp_path / "campaign.json"
        path.write_text(json.dumps(data))
        return str(path)

    def test_config_file_fields_apply(self, tmp_path):
        from repro.experiments.runner import build_campaign_spec

        config = self._write_config(tmp_path, {"stride": 9, "max_outer": 40,
                                               "detector": "bound"})
        args = build_parser().parse_args(["fig3", "--config", config])
        spec = build_campaign_spec(args, problem_key="poisson")
        assert spec.stride == 9          # config beats the runner default
        assert spec.max_outer == 40      # config beats the per-problem budget
        assert spec.detector == "bound"

    def test_flags_override_config(self, tmp_path):
        from repro.experiments.runner import build_campaign_spec

        config = self._write_config(tmp_path, {"stride": 9})
        args = build_parser().parse_args(
            ["fig3", "--config", config, "--stride", "3"])
        assert build_campaign_spec(args).stride == 3

    def test_set_overrides_flags_and_config(self, tmp_path):
        from repro.experiments.runner import build_campaign_spec

        config = self._write_config(tmp_path, {"stride": 9})
        args = build_parser().parse_args(
            ["fig3", "--config", config, "--stride", "3",
             "--set", "stride=7", "--set", "exec.backend=batched",
             "--set", "exec.batch_size=4", "--set", "solver.inner.maxiter=12"])
        spec = build_campaign_spec(args)
        assert spec.stride == 7
        assert spec.exec.backend == "batched"
        assert spec.exec.batch_size == 4
        assert spec.solver.inner.maxiter == 12

    def test_config_path_matches_flag_path_end_to_end(self, tmp_path, capsys):
        """A campaign defined purely as JSON prints the identical figure."""
        code = main(["fig3", "--scale", "tiny", "--stride", "15",
                     "--inner-iterations", "6"])
        flag_out = capsys.readouterr().out
        assert code == 0
        config = self._write_config(tmp_path,
                                    {"stride": 15, "inner_iterations": 6,
                                     "max_outer": 100})
        code = main(["fig3", "--scale", "tiny", "--config", config])
        config_out = capsys.readouterr().out
        assert code == 0
        assert config_out == flag_out

    def test_config_problem_spec_selects_problem(self, tmp_path, capsys):
        config = self._write_config(tmp_path,
                                    {"problem": {"name": "poisson", "grid_n": 9},
                                     "stride": 20, "inner_iterations": 6,
                                     "max_outer": 30})
        code = main(["fig3", "--scale", "tiny", "--config", config])
        out = capsys.readouterr().out
        assert code == 0
        assert "poisson-9x9" in out

    def test_bad_set_reports_field(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig3", "--scale", "tiny", "--set", "exec.bogus=1"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "exec.bogus" in err

    def test_invalid_knob_combination_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig3", "--scale", "tiny", "--backend", "process",
                  "--set", "exec.batch_size=8"])
        assert excinfo.value.code == 2
        assert "batch_size" in capsys.readouterr().err

    def test_unknown_detector_is_a_clean_cli_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig3", "--scale", "tiny", "--stride", "20",
                  "--detector", "bogus"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "bogus" in err and "bound" in err  # names what is registered

    def test_missing_config_file_is_a_clean_cli_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig3", "--scale", "tiny", "--config", "no-such-file.json"])
        assert excinfo.value.code == 2
        assert "no-such-file.json" in capsys.readouterr().err

    def test_solver_max_outer_does_not_conflict_with_budget_fallback(self):
        """The runner's per-problem max_outer is a fallback; a user-set
        solver.max_outer must not trip a spurious conflict (fig4's circuit
        budget of 200 differs from the CampaignSpec default)."""
        from repro.experiments.runner import build_campaign_spec
        from repro.faults.campaign import FaultCampaign
        from repro.gallery.problems import poisson_problem

        args = build_parser().parse_args(
            ["fig4", "--set", "solver.max_outer=150"])
        spec = build_campaign_spec(args, problem_key="circuit")
        campaign = FaultCampaign.from_spec(spec, problem=poisson_problem(6))
        assert campaign.max_outer == 150

    def test_executor_knob_conflict_is_a_clean_cli_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig3", "--scale", "tiny", "--stride", "20",
                  "--set", "exec.chunksize=4"])
        assert excinfo.value.code == 2
        assert "chunksize" in capsys.readouterr().err

    def test_malformed_config_is_a_clean_cli_error(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(SystemExit) as excinfo:
            main(["fig3", "--scale", "tiny", "--config", str(path)])
        assert excinfo.value.code == 2
        assert "not valid JSON" in capsys.readouterr().err

    def test_internal_errors_are_not_masked_as_cli_errors(self, monkeypatch):
        """Only configuration errors become exit-2 parser errors; a genuine
        ValueError from the numerics keeps its traceback."""
        import repro.experiments.runner as runner_mod

        def boom(name, problems, args):
            raise ValueError("numerical kernel bug")

        monkeypatch.setattr(runner_mod, "run_experiment", boom)
        with pytest.raises(ValueError, match="numerical kernel bug"):
            runner_mod.main(["table1", "--scale", "tiny"])
