"""Tests for the command-line experiment runner."""

from __future__ import annotations

import pytest

from repro.experiments.runner import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.experiments == ["table1"]
        assert args.scale == "small"
        assert args.stride == 5

    def test_multiple_experiments(self):
        args = build_parser().parse_args(["table1", "fig2", "--scale", "tiny"])
        assert args.experiments == ["table1", "fig2"]
        assert args.scale == "tiny"

    def test_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9"])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table1", "--scale", "huge"])


class TestMain:
    def test_table1_and_fig2(self, capsys):
        code = main(["table1", "fig2", "--scale", "tiny"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table I" in out
        assert "number of rows" in out
        assert "Figure 2" in out
        assert "tridiagonal=True" in out

    def test_summary_tiny(self, capsys):
        code = main(["summary", "--scale", "tiny", "--stride", "20",
                     "--inner-iterations", "8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Section VII-E summary" in out
        assert "worst-case increase" in out

    def test_fig3_tiny(self, capsys):
        code = main(["fig3", "--scale", "tiny", "--stride", "15",
                     "--inner-iterations", "6"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Figure 3" in out
        assert "fault class: large" in out
