"""The streaming results subsystem: event bus, query API, run store.

Covers the unified Event schema and sink protocol (including bit-identity of
solves observed through a sink), the TrialQuery filter/group/aggregate
helpers against the legacy CampaignResult methods they reimplement, the
RunStore layout (manifest round trip, torn-tail recovery, artifacts), and
the provenance/timing satellite guarantees.
"""

from __future__ import annotations

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.api import iter_trials, run_campaign
from repro.core.gmres import gmres
from repro.core.ftgmres import ft_gmres
from repro.faults.campaign import FaultCampaign, TrialRecord, CampaignResult
from repro.gallery.problems import poisson_problem
from repro.registry import RegistryError, resolve_sink
from repro.results.events import (
    CallbackSink,
    CollectingSink,
    Event,
    JsonlEventSink,
    MultiSink,
    NullSink,
    ProgressSink,
    ensure_sink,
)
from repro.results.query import TrialQuery
from repro.results.store import (
    RunManifest,
    RunStore,
    RunStoreError,
    campaign_fingerprint,
)
from repro.specs import CampaignSpec, spec_hash
from repro.utils.events import EventLog, SolverEvent


@pytest.fixture
def problem():
    return poisson_problem(8)


@pytest.fixture
def campaign(problem):
    return FaultCampaign(problem, inner_iterations=5, max_outer=20)


@pytest.fixture
def result(campaign):
    return campaign.run(locations=[0, 2, 4])


# ====================================================================== #
# Event schema + sinks
# ====================================================================== #
class TestEventSchema:
    def test_solver_event_is_the_unified_event(self):
        assert SolverEvent is Event

    def test_round_trip(self):
        event = Event("fault_detected", where="hessenberg", outer_iteration=3,
                      inner_iteration=7, trial_index=12,
                      data={"value": 1.5, "bound": 2.0})
        assert Event.from_dict(event.to_dict()) == event

    def test_defaults_omitted_from_dict(self):
        assert Event("converged").to_dict() == {"kind": "converged"}

    def test_collecting_and_multi_sinks(self):
        a, b = CollectingSink(), CollectingSink()
        multi = MultiSink([a, b])
        multi.emit(Event("x"))
        multi.emit(Event("y"))
        assert [e.kind for e in a] == ["x", "y"]
        assert a.events == b.events
        assert len(a.of_kind("x")) == 1

    def test_ensure_sink_coercions(self):
        seen = []
        sink = ensure_sink(seen.append)
        assert isinstance(sink, CallbackSink)
        sink.emit(Event("z"))
        assert seen[0].kind == "z"
        assert ensure_sink(None) is None
        null = NullSink()
        assert ensure_sink(null) is null
        assert isinstance(ensure_sink([null, seen.append]), MultiSink)
        with pytest.raises(TypeError):
            ensure_sink(42)

    def test_progress_sink_adapts_legacy_callback(self):
        calls = []
        sink = ProgressSink(lambda done, total: calls.append((done, total)))
        sink.emit(Event("trial_completed", data={"done": 2, "total": 5}))
        sink.emit(Event("fault_injected"))  # ignored
        assert calls == [(2, 5)]

    def test_jsonl_sink_appends_readable_lines(self, tmp_path):
        sink = JsonlEventSink(str(tmp_path / "sub") + os.sep)  # directory form
        sink.emit(Event("a", data={"v": 1}))
        sink.emit(Event("b"))
        sink.close()
        lines = (tmp_path / "sub" / "events.jsonl").read_text().splitlines()
        assert [Event.from_dict(json.loads(l)).kind for l in lines] == ["a", "b"]


class TestEventLogAdapter:
    def test_eventlog_forwards_to_downstream_sink(self):
        downstream = CollectingSink()
        log = EventLog(forward_to=downstream)
        log.record("one", where="here", payload=1)
        other = EventLog()
        other.record("two")
        log.extend(other)
        assert [e.kind for e in downstream] == ["one", "two"]
        assert len(log) == 2

    def test_eventlog_ensure(self):
        log = EventLog()
        assert EventLog.ensure(log) is log
        assert isinstance(EventLog.ensure(None), EventLog)
        sink = CollectingSink()
        wrapped = EventLog.ensure(sink)
        wrapped.record("k")
        assert sink.events[0].kind == "k"

    def test_gmres_streams_events_bit_identically(self, problem):
        """Observing a solve through a sink changes nothing numerically."""
        plain = gmres(problem.A, problem.b, tol=1e-10, maxiter=30)
        sink = CollectingSink()
        observed = gmres(problem.A, problem.b, tol=1e-10, maxiter=30,
                         events=sink)
        assert np.array_equal(plain.x, observed.x)
        assert plain.iterations == observed.iterations
        assert plain.residual_norm == observed.residual_norm
        # the sink saw exactly the events on the result's log
        assert sink.events == list(observed.events)

    def test_ft_gmres_streams_merged_events(self, problem):
        sink = CollectingSink()
        result = ft_gmres(problem.A, problem.b, inner_iterations=5,
                          max_outer=20, events=sink)
        assert result.converged
        assert sink.events == list(result.events)
        assert any(e.kind == "inner_solve_complete" for e in sink)


class TestCampaignEvents:
    def test_lifecycle_events(self, campaign):
        sink = CollectingSink()
        result = campaign.run(locations=[0, 3], sink=sink)
        kinds = [e.kind for e in sink]
        assert kinds[0] == "campaign_started"
        assert kinds[1] == "baseline_completed"
        assert kinds[-1] == "campaign_completed"
        completed = sink.of_kind("trial_completed")
        assert len(completed) == len(result.trials)
        assert completed[-1].data["done"] == completed[-1].data["total"]
        # payload carries the full record
        record = TrialRecord.from_dict(
            {k: v for k, v in completed[0].data["record"].items() if k != "kind"})
        assert record in result.trials

    def test_sink_does_not_change_results(self, campaign):
        with_sink = campaign.run(locations=[0, 3], sink=CollectingSink())
        without = campaign.run(locations=[0, 3])
        assert with_sink.trials == without.trials

    def test_sink_list_may_mix_specs_and_callables(self, campaign):
        seen = []
        memory = resolve_sink("memory")
        result = campaign.run(locations=[1], sink=["memory", seen.append, memory])
        assert [e.kind for e in memory] == [e.kind for e in seen]
        assert len(memory.of_kind("trial_completed")) == len(result.trials)

    def test_jsonl_sink_path_without_extension_is_a_directory(self, tmp_path):
        sink = resolve_sink(f"jsonl:{tmp_path / 'runs'}")  # no trailing sep
        sink.emit(Event("a"))
        sink.close()
        assert (tmp_path / "runs").is_dir()
        assert (tmp_path / "runs" / "events.jsonl").is_file()

    def test_jsonl_sink_trailing_sep_wins_over_dotted_name(self, tmp_path):
        dotted = str(tmp_path / "runs.v2") + os.sep
        sink = JsonlEventSink(dotted)
        sink.emit(Event("a"))
        sink.close()
        assert (tmp_path / "runs.v2" / "events.jsonl").is_file()

    def test_registered_sink_specs(self, campaign, tmp_path):
        jsonl = resolve_sink(f"jsonl:{tmp_path}/ev/")
        campaign.run(locations=[1], sink=jsonl)
        jsonl.close()
        lines = (tmp_path / "ev" / "events.jsonl").read_text().splitlines()
        kinds = [json.loads(l)["kind"] for l in lines]
        assert "campaign_started" in kinds and "trial_completed" in kinds
        assert isinstance(resolve_sink("memory"), CollectingSink)
        assert isinstance(resolve_sink("null"), NullSink)
        with pytest.raises(RegistryError):
            resolve_sink("no-such-sink")


# ====================================================================== #
# TrialQuery
# ====================================================================== #
class TestTrialQuery:
    def test_filter_group_series_match_legacy_helpers(self, result):
        q = result.query()
        assert isinstance(q, TrialQuery)
        for cls in result.fault_classes():
            x, y = result.series(cls)
            qx, qy = q.filter(fault_class=cls).series()
            assert np.array_equal(x, qx) and np.array_equal(y, qy)
            assert result.detection_rate(cls) == (
                q.filter(fault_class=cls).rate(lambda t: t.faults_detected > 0))
            assert result.max_outer(cls) == (
                q.filter(fault_class=cls).max("outer_iterations"))
        groups = q.group_by("fault_class")
        assert list(groups) == result.fault_classes()
        assert sum(len(g) for g in groups.values()) == len(result.trials)

    def test_predicates_and_projections(self, result):
        q = result.query()
        assert q.filter(lambda t: t.converged).count() + \
            q.filter(converged=False).count() == len(q)
        assert q.exclude(fault_class="large").distinct("fault_class") == \
            [c for c in result.fault_classes() if c != "large"]
        locs = q.values("aggregate_inner_iteration")
        assert q.sort_by("aggregate_inner_iteration").values(
            "aggregate_inner_iteration") == sorted(locs)
        assert q.min("outer_iterations") <= q.mean("outer_iterations") \
            <= q.max("outer_iterations")
        assert q.median("outer_iterations") >= 0

    def test_campaign_class_table_matches_result_helpers(self, result):
        from repro.experiments.report import campaign_class_table

        _, rows = campaign_class_table(result)
        assert [row[0] for row in rows] == result.fault_classes()
        for row in rows:
            cls = row[0]
            assert row[1] == result.max_outer(cls)
            assert row[2] == result.max_increase(cls)

    def test_aggregate_and_empty_query(self):
        empty = TrialQuery([])
        assert not empty
        assert empty.series() == pytest.approx((np.empty(0), np.empty(0))) \
            or empty.series()[0].size == 0
        assert empty.rate(lambda t: True) == 0.0
        assert empty.max("outer_iterations") == 0
        assert empty.aggregate(n=len) == {"n": 0}


# ====================================================================== #
# provenance + timing satellites
# ====================================================================== #
class TestProvenanceAndTiming:
    def test_spec_hash_is_stable_and_canonical(self):
        a = CampaignSpec(stride=3, detector="bound")
        b = CampaignSpec.from_dict(a.to_dict())
        assert spec_hash(a) == spec_hash(b)
        assert spec_hash(a) != spec_hash(CampaignSpec(stride=4, detector="bound"))
        assert len(spec_hash(a)) == 16

    def test_run_campaign_stamps_provenance(self, problem):
        result = run_campaign(problem, locations=[0, 2], inner_iterations=5,
                              max_outer=20)
        assert result.repro_version
        assert result.seed == problem.seed == 7
        assert result.spec_hash == campaign_fingerprint(
            CampaignSpec(locations=(0, 2), inner_iterations=5, max_outer=20),
            problem.name)
        for trial in result.trials:
            assert trial.repro_version == result.repro_version
            assert trial.seed == result.seed
            assert trial.spec_hash == result.spec_hash

    def test_provenance_round_trips_through_to_dict(self, problem):
        result = run_campaign(problem, locations=[1], inner_iterations=5,
                              max_outer=20)
        rebuilt = CampaignResult.from_dict(result.to_dict())
        assert rebuilt.repro_version == result.repro_version
        assert rebuilt.seed == result.seed
        assert rebuilt.spec_hash == result.spec_hash
        assert rebuilt.trials[0].spec_hash == result.trials[0].spec_hash
        assert rebuilt.trials[0].elapsed == result.trials[0].elapsed

    def test_unstamped_record_dict_omits_provenance(self):
        record = TrialRecord("c", "d", 0, "first", 1, 5, True, "converged",
                             1e-9, 1, 0, False)
        out = record.to_dict()
        assert "repro_version" not in out and "spec_hash" not in out
        assert out["elapsed"] == 0.0
        assert TrialRecord.from_dict({k: v for k, v in out.items()
                                      if k != "kind"}) == record

    def test_provenance_and_elapsed_do_not_affect_equality(self):
        record = TrialRecord("c", "d", 0, "first", 1, 5, True, "converged",
                             1e-9, 1, 0, False)
        stamped = dataclasses.replace(record, elapsed=3.0, repro_version="x",
                                      seed=1, spec_hash="h")
        assert stamped == record

    @pytest.mark.parametrize("backend,knobs", [
        ("serial", {}),
        ("thread", {"workers": 2}),
        ("process", {"workers": 2}),
        ("batched", {"batch_size": 2}),
    ])
    def test_all_backends_record_wall_time(self, campaign, backend, knobs):
        result = campaign.run(locations=[0, 2, 5], backend=backend, **knobs)
        assert all(t.elapsed > 0.0 for t in result.trials)


# ====================================================================== #
# RunStore
# ====================================================================== #
class TestRunStore:
    def _manifest(self, run_id="r1", total=2) -> RunManifest:
        return RunManifest(
            run_id=run_id, spec={"stride": 5}, spec_hash="abc",
            problem_name="p", repro_version="1", seed=7, mgs_position="first",
            inner_iterations=5, detector_enabled=False, failure_free_outer=3,
            failure_free_residual=1e-9, locations=[0, 1], fault_classes=["large"],
            total_trials=total)

    def _record(self, loc=0) -> TrialRecord:
        return TrialRecord("large", "d", loc, "first", 3, 15, True,
                           "converged", 1e-9, 1, 0, False)

    def test_manifest_round_trip(self, tmp_path):
        store = RunStore(tmp_path)
        store.create_run(self._manifest()).close()
        manifest = store.manifest("r1")
        assert manifest.to_dict() == self._manifest().to_dict()
        assert store.run_ids() == ["r1"]
        assert store.exists("r1") and not store.exists("nope")

    def test_fresh_create_refuses_overwrite(self, tmp_path):
        store = RunStore(tmp_path)
        store.create_run(self._manifest()).close()
        with pytest.raises(RunStoreError, match="already exists"):
            store.create_run(self._manifest())

    def test_missing_run_raises_with_inventory(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(RunStoreError, match="no run"):
            store.manifest("ghost")
        with pytest.raises(RunStoreError, match="invalid run id"):
            store.run_path("../escape")
        with pytest.raises(RunStoreError, match="reserved"):
            store.run_path("artifacts")

    def test_append_read_and_finalize(self, tmp_path):
        store = RunStore(tmp_path)
        with store.create_run(self._manifest()) as writer:
            writer.append(0, self._record(0))
            writer.append(1, self._record(1))
        pairs, torn = store.read_trials("r1")
        assert not torn
        assert [i for i, _ in pairs] == [0, 1]
        assert pairs[0][1] == self._record(0)
        assert store.completed_indices("r1") == {0, 1}
        assert store.manifest("r1").status == "running"
        store.finalize("r1")
        assert store.manifest("r1").status == "complete"

    def test_torn_tail_detected_and_recovered(self, tmp_path):
        store = RunStore(tmp_path)
        with store.create_run(self._manifest()) as writer:
            writer.append(0, self._record(0))
        trials_path = os.path.join(store.run_path("r1"), "trials.jsonl")
        with open(trials_path, "a", encoding="utf-8") as handle:
            handle.write('{"index": 1, "fault_class": "larg')  # torn write
        pairs, torn = store.read_trials("r1")
        assert torn and len(pairs) == 1
        recovered = store.recover("r1")
        assert len(recovered) == 1
        # the file is clean again: appends after recovery parse fine
        with store.create_run(self._manifest(), resume=True) as writer:
            writer.append(1, self._record(1))
        pairs, torn = store.read_trials("r1")
        assert not torn and len(pairs) == 2

    def test_corruption_before_the_tail_raises(self, tmp_path):
        store = RunStore(tmp_path)
        with store.create_run(self._manifest()) as writer:
            writer.append(0, self._record(0))
        trials_path = os.path.join(store.run_path("r1"), "trials.jsonl")
        content = open(trials_path).read()
        with open(trials_path, "w", encoding="utf-8") as handle:
            handle.write("GARBAGE\n" + content)
        with pytest.raises(RunStoreError, match="corrupt trial record"):
            store.read_trials("r1")

    def test_load_result_requires_completeness(self, tmp_path):
        store = RunStore(tmp_path)
        with store.create_run(self._manifest(total=2)) as writer:
            writer.append(0, self._record(0))
        with pytest.raises(RunStoreError, match="incomplete"):
            store.load_result("r1")
        partial = store.load_result("r1", allow_partial=True)
        assert len(partial.trials) == 1
        assert partial.repro_version == "1" and partial.spec_hash == "abc"

    def test_query_over_stored_run(self, tmp_path):
        store = RunStore(tmp_path)
        with store.create_run(self._manifest()) as writer:
            writer.append(1, self._record(1))  # completion order != canonical
            writer.append(0, self._record(0))
        q = store.query("r1")
        assert q.values("aggregate_inner_iteration") == [0, 1]  # canonical
        assert q.filter(fault_class="large").count() == 2

    def test_artifacts_round_trip(self, tmp_path):
        store = RunStore(tmp_path)
        payload = {"headers": ["a"], "rows": [[np.float64(1.5)]]}
        store.save_artifact("table1-tiny", payload)
        assert store.has_artifact("table1-tiny")
        loaded = store.load_artifact("table1-tiny")
        assert loaded["rows"] == [[1.5]]
        with pytest.raises(RunStoreError, match="no artifact"):
            store.load_artifact("missing")


# ====================================================================== #
# streaming facade
# ====================================================================== #
class TestIterTrials:
    def test_iter_trials_matches_run_campaign(self, problem):
        spec = dict(inner_iterations=5, max_outer=20, locations=[0, 2, 4])
        reference = run_campaign(problem, dict(spec))
        streamed = list(iter_trials(problem, dict(spec)))
        assert streamed == reference.trials

    def test_serial_streaming_is_lazy(self, problem):
        spec = dict(inner_iterations=5, max_outer=20, locations=[0, 2, 4, 6])
        stream = iter_trials(problem, spec)
        first = next(stream)
        assert first.aggregate_inner_iteration == 0
        stream.close()  # closing early must not raise

    def test_early_close_over_pool_backend(self, problem):
        """Closing a pool-backed stream cancels the unstarted chunks."""
        spec = dict(inner_iterations=5, max_outer=20,
                    locations=[0, 1, 2, 3, 4, 5],
                    exec={"backend": "thread", "workers": 2, "chunksize": 1})
        stream = iter_trials(problem, spec)
        next(stream)
        stream.close()  # must neither hang nor raise

    def test_windowed_streaming_over_batched(self, problem):
        spec = dict(inner_iterations=5, max_outer=20, locations=[0, 2, 4],
                    exec={"backend": "batched", "batch_size": 2})
        reference = run_campaign(problem, dict(spec,
                                               exec={"backend": "serial"}))
        streamed = sorted(iter_trials(problem, spec),
                          key=lambda t: (t.fault_class, t.aggregate_inner_iteration))
        ordered = sorted(reference.trials,
                         key=lambda t: (t.fault_class, t.aggregate_inner_iteration))
        assert [(t.fault_class, t.aggregate_inner_iteration, t.outer_iterations,
                 t.status) for t in streamed] == \
            [(t.fault_class, t.aggregate_inner_iteration, t.outer_iterations,
              t.status) for t in ordered]
