"""End-to-end integration tests that reproduce the paper's qualitative findings.

Each test corresponds to a claim made in the paper's evaluation or summary
(Section VII), exercised at reduced problem sizes so the whole suite stays
fast.  The full-size sweeps live in the benchmark harness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.detectors import HessenbergBoundDetector
from repro.core.ftgmres import FTGMRESParameters, ft_gmres
from repro.core.gmres import GMRESParameters, gmres
from repro.core.least_squares import LeastSquaresPolicy
from repro.faults.campaign import FaultCampaign
from repro.faults.injector import FaultInjector
from repro.faults.models import PAPER_FAULT_CLASSES, BitFlipFault, ScalingFault
from repro.faults.schedule import InjectionSchedule
from repro.gallery.problems import circuit_problem, poisson_problem
from repro.sparse.norms import frobenius_norm


@pytest.fixture(scope="module")
def poisson():
    """SPD problem, 400 unknowns."""
    return poisson_problem(grid_n=20)


@pytest.fixture(scope="module")
def circuit():
    """Nonsymmetric ill-conditioned problem, 400 unknowns."""
    return circuit_problem(400)


INNER = 10  # inner iterations per outer solve for these reduced-size tests


def make_injector(fault, location, position="first"):
    return FaultInjector(fault, InjectionSchedule(aggregate_inner_iteration=location,
                                                  mgs_position=position))


class TestClaimRunThrough:
    """Section VII / conclusions: the inner-outer scheme 'runs through' SDC of
    almost any magnitude in the orthogonalization phase."""

    @pytest.mark.parametrize("fault_class", list(PAPER_FAULT_CLASSES))
    @pytest.mark.parametrize("position", ["first", "last"])
    def test_poisson_runs_through_every_class(self, poisson, fault_class, position):
        clean = ft_gmres(poisson.A, poisson.b, inner_iterations=INNER, max_outer=60)
        assert clean.converged
        for location in (0, 1, INNER - 1, INNER, 3 * INNER + 2):
            faulty = ft_gmres(poisson.A, poisson.b, inner_iterations=INNER, max_outer=60,
                              injector=make_injector(PAPER_FAULT_CLASSES[fault_class],
                                                     location, position))
            assert faulty.converged, (fault_class, position, location)
            assert poisson.residual_norm(faulty.x) <= 1e-7 * np.linalg.norm(poisson.b)

    def test_circuit_runs_through_large_faults(self, circuit):
        clean = ft_gmres(circuit.A, circuit.b, inner_iterations=INNER, max_outer=120)
        assert clean.converged
        for location in (0, 2, INNER + 1):
            faulty = ft_gmres(circuit.A, circuit.b, inner_iterations=INNER, max_outer=120,
                              injector=make_injector(ScalingFault(1e150), location))
            assert faulty.converged
            # Bounded penalty, no silent wrong answer.
            assert circuit.residual_norm(faulty.x) <= 1e-7 * np.linalg.norm(circuit.b)
            assert faulty.outer_iterations <= clean.outer_iterations + 10

    def test_single_gmres_not_as_robust(self, poisson):
        """Contrast: a *single-level* GMRES hit by the same huge SDC converges
        more slowly than the nested scheme relative to its failure-free run
        (this is the motivation for the layered approach)."""
        injector = make_injector(ScalingFault(1e150), 1)
        clean = gmres(poisson.A, poisson.b, tol=1e-8, maxiter=400)
        faulty = gmres(poisson.A, poisson.b, tol=1e-8, maxiter=400,
                       injector=injector)
        nested_clean = ft_gmres(poisson.A, poisson.b, inner_iterations=INNER, max_outer=60)
        nested_faulty = ft_gmres(poisson.A, poisson.b, inner_iterations=INNER, max_outer=60,
                                 injector=make_injector(ScalingFault(1e150), 1))
        single_penalty = faulty.iterations - clean.iterations
        nested_penalty = nested_faulty.outer_iterations - nested_clean.outer_iterations
        # The nested scheme wastes at most a couple of outer iterations; the
        # flat solver loses at least as much work (usually a full restart's worth).
        assert nested_penalty <= max(single_penalty, 2)


class TestClaimDetection:
    """Section V: class-1 faults violate the Hessenberg bound and are caught;
    class-2/3 faults are below the bound and cannot be caught."""

    def test_detection_pattern(self, poisson):
        campaign_kwargs = dict(inner_iterations=INNER, max_outer=60, detector="bound",
                               detector_response="zero")
        campaign = FaultCampaign(poisson, mgs_position="first", **campaign_kwargs)
        result = campaign.run(locations=[0, 3, INNER + 2, 2 * INNER + 5])
        assert result.detection_rate("large") == 1.0
        assert result.detection_rate("slightly_smaller") == 0.0
        assert result.detection_rate("near_zero") == 0.0

    def test_no_false_positives_on_clean_runs(self, poisson, circuit):
        for problem in (poisson, circuit):
            detector = HessenbergBoundDetector(frobenius_norm(problem.A))
            params = FTGMRESParameters(
                inner=GMRESParameters(tol=0.0, maxiter=INNER, detector=detector,
                                      detector_response="raise"))
            result = ft_gmres(problem.A, problem.b, params=params, max_outer=120)
            assert result.faults_detected == 0
            assert result.converged

    def test_bitflips_subsumed_by_numerical_model(self, poisson):
        """The paper argues bit flips are just numerical errors: a high-exponent
        bit flip is detected by the same bound, a low-mantissa flip is run through."""
        detector_kwargs = dict(inner_iterations=INNER, max_outer=60, detector="bound",
                               detector_response="zero")
        big_flip = FaultCampaign(poisson, fault_classes={"exp": BitFlipFault(bit=62)},
                                 **detector_kwargs)
        res_big = big_flip.run(locations=[2])
        small_flip = FaultCampaign(poisson, fault_classes={"mant": BitFlipFault(bit=2)},
                                   **detector_kwargs)
        res_small = small_flip.run(locations=[2])
        assert res_big.detection_rate("exp") == 1.0
        assert res_small.detection_rate("mant") == 0.0
        assert res_small.trials[0].converged


class TestClaimDetectorLimitsDamage:
    """Section VII-E: with the filter, the worst-case penalty shrinks."""

    def test_worst_case_with_detector_not_worse(self, poisson):
        locations = list(range(0, 2 * INNER, 2))
        without = FaultCampaign(poisson, inner_iterations=INNER, max_outer=60,
                                fault_classes={"large": ScalingFault(1e150)},
                                detector=None).run(locations=locations)
        with_det = FaultCampaign(poisson, inner_iterations=INNER, max_outer=60,
                                 fault_classes={"large": ScalingFault(1e150)},
                                 detector="bound", detector_response="zero").run(
            locations=locations)
        assert with_det.max_increase("large") <= without.max_increase("large")
        assert with_det.failure_free_outer == without.failure_free_outer


class TestClaimEarlyVulnerability:
    """Section VII-E: faulting early in the first inner solve is universally bad
    (or at least never better than faulting late)."""

    def test_early_faults_cost_at_least_as_much_as_late_faults(self, poisson, circuit):
        for problem, max_outer in ((poisson, 60), (circuit, 120)):
            campaign = FaultCampaign(problem, inner_iterations=INNER, max_outer=max_outer,
                                     fault_classes={"large": ScalingFault(1e150)},
                                     detector=None)
            baseline = campaign.run_failure_free().outer_iterations
            early = [campaign.run_single("large", ScalingFault(1e150), loc).outer_iterations
                     for loc in range(0, 3)]
            late_start = (baseline - 1) * INNER
            late = [campaign.run_single("large", ScalingFault(1e150), loc).outer_iterations
                    for loc in range(late_start, late_start + 3)]
            assert max(early) >= max(late)


class TestClaimLeastSquaresRobustness:
    """Section VI-D: the rank-revealing policy keeps the update coefficients
    bounded when the projected problem is corrupted into near-singularity."""

    def test_rank_revealing_bounds_update_under_subdiag_corruption(self, poisson):
        injector_std = FaultInjector(
            ScalingFault(1e-300),
            InjectionSchedule(site="subdiag", aggregate_inner_iteration=2, mgs_position=None))
        injector_rr = FaultInjector(
            ScalingFault(1e-300),
            InjectionSchedule(site="subdiag", aggregate_inner_iteration=2, mgs_position=None))
        standard = gmres(poisson.A, poisson.b, tol=0.0, maxiter=8, restart=8,
                         lsq_policy=LeastSquaresPolicy.STANDARD, injector=injector_std)
        robust = gmres(poisson.A, poisson.b, tol=0.0, maxiter=8, restart=8,
                       lsq_policy=LeastSquaresPolicy.RANK_REVEALING, injector=injector_rr)
        assert np.all(np.isfinite(robust.x))
        assert np.linalg.norm(robust.x) <= 1e6 * np.linalg.norm(poisson.b)
        # The robust policy's iterate is never (much) worse than the standard one.
        assert (np.linalg.norm(robust.x) <= 10 * np.linalg.norm(standard.x)
                or not np.all(np.isfinite(standard.x)))

    def test_policies_identical_without_faults(self, poisson):
        results = {}
        for policy in ("standard", "hybrid", "rank_revealing"):
            results[policy] = gmres(poisson.A, poisson.b, tol=1e-10, maxiter=200,
                                    lsq_policy=policy)
        for policy, result in results.items():
            assert result.converged, policy
            np.testing.assert_allclose(result.x, results["standard"].x, rtol=1e-6, atol=1e-8)


class TestClaimTrichotomyNeverSilent:
    """Section VI-C: FGMRES either converges, detects an invariant subspace, or
    loudly reports failure — it never silently returns a wrong answer."""

    @pytest.mark.parametrize("factor", [1e150, 1e-300, 10 ** -0.5])
    def test_converged_means_correct(self, circuit, factor):
        for location in (0, 5, 17):
            result = ft_gmres(circuit.A, circuit.b, inner_iterations=INNER, max_outer=120,
                              injector=make_injector(ScalingFault(factor), location))
            if result.converged:
                assert circuit.residual_norm(result.x) <= 1e-7 * np.linalg.norm(circuit.b)
            else:
                assert result.status.is_loud_failure or result.status.value == "max_iterations"
