"""Unit tests for the preconditioners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gmres import gmres
from repro.precond.identity import IdentityPreconditioner
from repro.precond.ilu import ILU0Preconditioner
from repro.precond.jacobi import BlockJacobiPreconditioner, JacobiPreconditioner
from repro.precond.polynomial import NeumannPolynomialPreconditioner
from repro.precond.ssor import GaussSeidelPreconditioner, SSORPreconditioner
from repro.sparse.csr import CSRMatrix


class TestIdentity:
    def test_returns_copy(self, rng):
        m = IdentityPreconditioner(8)
        r = rng.standard_normal(8)
        z = m.apply(r)
        np.testing.assert_array_equal(z, r)
        z[0] = 99.0
        assert r[0] != 99.0

    def test_length_validated(self):
        with pytest.raises(ValueError):
            IdentityPreconditioner(4).apply(np.ones(5))

    def test_callable(self):
        m = IdentityPreconditioner(3)
        np.testing.assert_array_equal(m(np.arange(3.0)), np.arange(3.0))


class TestJacobi:
    def test_exact_for_diagonal_matrix(self):
        diag = np.array([2.0, 4.0, -8.0])
        A = CSRMatrix.from_dense(np.diag(diag))
        m = JacobiPreconditioner(A)
        r = np.array([2.0, 4.0, 8.0])
        np.testing.assert_allclose(m.apply(r), r / diag)

    def test_zero_diagonal_handled(self):
        A = CSRMatrix.from_dense(np.array([[0.0, 1.0], [1.0, 2.0]]))
        m = JacobiPreconditioner(A)
        z = m.apply(np.array([3.0, 4.0]))
        assert z[0] == 3.0  # unscaled where the diagonal vanishes
        assert z[1] == 2.0

    def test_length_validated(self, poisson_small):
        m = JacobiPreconditioner(poisson_small)
        with pytest.raises(ValueError):
            m.apply(np.ones(poisson_small.shape[0] + 1))

    def test_accelerates_gmres(self, diag_dom_small, rng):
        b = rng.standard_normal(diag_dom_small.shape[0])
        plain = gmres(diag_dom_small, b, tol=1e-10, maxiter=200)
        precond = gmres(diag_dom_small, b, tol=1e-10, maxiter=200,
                        preconditioner=JacobiPreconditioner(diag_dom_small))
        assert precond.converged
        assert precond.iterations <= plain.iterations


class TestBlockJacobi:
    def test_whole_matrix_block_is_exact(self, small_dense, rng):
        A = CSRMatrix.from_dense(small_dense)
        m = BlockJacobiPreconditioner(A, block_size=small_dense.shape[0])
        r = rng.standard_normal(small_dense.shape[0])
        np.testing.assert_allclose(m.apply(r), np.linalg.solve(small_dense, r), rtol=1e-10)

    def test_block_size_one_is_jacobi(self, poisson_small, rng):
        r = rng.standard_normal(poisson_small.shape[0])
        blk = BlockJacobiPreconditioner(poisson_small, block_size=1)
        jac = JacobiPreconditioner(poisson_small)
        np.testing.assert_allclose(blk.apply(r), jac.apply(r), rtol=1e-12)

    def test_invalid_block_size(self, poisson_small):
        with pytest.raises(ValueError):
            BlockJacobiPreconditioner(poisson_small, block_size=0)

    def test_length_validated(self, poisson_small):
        m = BlockJacobiPreconditioner(poisson_small, block_size=8)
        with pytest.raises(ValueError):
            m.apply(np.ones(5))


class TestGaussSeidelSSOR:
    def test_gauss_seidel_solves_lower_triangular(self, rng):
        dense = np.tril(rng.standard_normal((8, 8))) + 8.0 * np.eye(8)
        A = CSRMatrix.from_dense(dense)
        m = GaussSeidelPreconditioner(A)
        r = rng.standard_normal(8)
        np.testing.assert_allclose(m.apply(r), np.linalg.solve(dense, r), rtol=1e-10)

    def test_ssor_symmetric_for_spd(self, poisson_small, rng):
        # The SSOR operator of an SPD matrix is SPD: check <M^{-1}u, v> symmetry.
        m = SSORPreconditioner(poisson_small, omega=1.0)
        u = rng.standard_normal(poisson_small.shape[0])
        v = rng.standard_normal(poisson_small.shape[0])
        left = np.dot(m.apply(u), v)
        right = np.dot(u, m.apply(v))
        assert left == pytest.approx(right, rel=1e-10)

    def test_ssor_omega_validated(self, poisson_small):
        with pytest.raises(ValueError):
            SSORPreconditioner(poisson_small, omega=2.5)

    def test_ssor_reduces_iterations(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        plain = gmres(poisson_medium, b, tol=1e-8, maxiter=300)
        precond = gmres(poisson_medium, b, tol=1e-8, maxiter=300,
                        preconditioner=SSORPreconditioner(poisson_medium))
        assert precond.converged
        assert precond.iterations < plain.iterations

    def test_length_validated(self, poisson_small):
        with pytest.raises(ValueError):
            GaussSeidelPreconditioner(poisson_small).apply(np.ones(3))
        with pytest.raises(ValueError):
            SSORPreconditioner(poisson_small).apply(np.ones(3))


class TestILU0:
    def test_exact_for_tridiagonal(self, rng):
        # ILU(0) of a tridiagonal matrix is an exact LU factorization
        # (no fill-in is discarded), so applying it solves the system.
        from repro.gallery.poisson import poisson1d

        A = poisson1d(20)
        m = ILU0Preconditioner(A)
        r = rng.standard_normal(20)
        np.testing.assert_allclose(m.apply(r), np.linalg.solve(A.todense(), r), rtol=1e-10)

    def test_reduces_gmres_iterations(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        plain = gmres(poisson_medium, b, tol=1e-8, maxiter=300)
        precond = gmres(poisson_medium, b, tol=1e-8, maxiter=300,
                        preconditioner=ILU0Preconditioner(poisson_medium))
        assert precond.converged
        assert precond.iterations < plain.iterations

    def test_requires_square(self):
        A = CSRMatrix.from_dense(np.ones((3, 4)))
        with pytest.raises(ValueError):
            ILU0Preconditioner(A)

    def test_length_validated(self, poisson_small):
        m = ILU0Preconditioner(poisson_small)
        with pytest.raises(ValueError):
            m.apply(np.ones(7))

    def test_nonsymmetric_matrix(self, nonsym_small, rng):
        m = ILU0Preconditioner(nonsym_small)
        r = rng.standard_normal(nonsym_small.shape[0])
        z = m.apply(r)
        assert np.all(np.isfinite(z))
        # The preconditioned residual should be much smaller than the raw one.
        approx_residual = np.linalg.norm(r - nonsym_small.matvec(z))
        assert approx_residual < 0.5 * np.linalg.norm(r)


class TestTrisolvePaths:
    """The level-scheduled and row-sequential engine paths are interchangeable."""

    @pytest.mark.parametrize("cls,kwargs", [
        (GaussSeidelPreconditioner, {}),
        (SSORPreconditioner, {"omega": 1.2}),
        (ILU0Preconditioner, {}),
    ])
    def test_apply_bit_identical_across_paths(self, poisson_medium, nonsym_small, rng,
                                              cls, kwargs):
        for A in (poisson_medium, nonsym_small):
            fast = cls(A, trisolve_mode="level", **kwargs)
            slow = cls(A, trisolve_mode="sequential", **kwargs)
            r = rng.standard_normal(A.shape[0])
            np.testing.assert_array_equal(fast.apply(r), slow.apply(r))

    @pytest.mark.parametrize("cls", [GaussSeidelPreconditioner, SSORPreconditioner,
                                     ILU0Preconditioner])
    def test_gmres_history_unchanged_across_paths(self, poisson_medium, rng, cls):
        """Preconditioned GMRES convergence histories do not depend on which
        engine path the preconditioner solves through."""
        b = rng.standard_normal(poisson_medium.shape[0])
        res_level = gmres(poisson_medium, b, tol=1e-8, maxiter=300,
                          preconditioner=cls(poisson_medium, trisolve_mode="level"))
        res_seq = gmres(poisson_medium, b, tol=1e-8, maxiter=300,
                        preconditioner=cls(poisson_medium, trisolve_mode="sequential"))
        assert res_level.converged and res_seq.converged
        assert res_level.iterations == res_seq.iterations
        np.testing.assert_array_equal(res_level.history.as_array(),
                                      res_seq.history.as_array())
        np.testing.assert_array_equal(res_level.x, res_seq.x)

    def test_fgmres_history_unchanged_across_paths(self, poisson_medium, rng):
        from repro.core.fgmres import fgmres

        b = rng.standard_normal(poisson_medium.shape[0])
        results = []
        for mode in ("level", "sequential"):
            ilu = ILU0Preconditioner(poisson_medium, trisolve_mode=mode)
            results.append(fgmres(poisson_medium, b,
                                  inner_solver=lambda q, j: ilu.apply(q),
                                  tol=1e-9, max_outer=100))
        level, seq = results
        assert level.converged and seq.converged
        assert level.iterations == seq.iterations
        np.testing.assert_array_equal(level.history.as_array(),
                                      seq.history.as_array())
        np.testing.assert_array_equal(level.x, seq.x)

    def test_invalid_mode_rejected(self, poisson_small):
        with pytest.raises(ValueError):
            GaussSeidelPreconditioner(poisson_small, trisolve_mode="banana")

    def test_factors_built_once_in_init(self, poisson_small):
        """Applies reuse the factors built at construction (no re-splitting)."""
        m = SSORPreconditioner(poisson_small)
        fwd, bwd = m._forward, m._backward
        m.apply(np.ones(poisson_small.shape[0]))
        assert m._forward is fwd and m._backward is bwd
        assert fwd.lower and not bwd.lower


class TestNeumannPolynomial:
    def test_degree_zero_is_jacobi(self, diag_dom_small, rng):
        r = rng.standard_normal(diag_dom_small.shape[0])
        poly = NeumannPolynomialPreconditioner(diag_dom_small, degree=0)
        jac = JacobiPreconditioner(diag_dom_small)
        np.testing.assert_allclose(poly.apply(r), jac.apply(r), rtol=1e-12)

    def test_higher_degree_improves_approximation(self, diag_dom_small, rng):
        r = rng.standard_normal(diag_dom_small.shape[0])
        exact = np.linalg.solve(diag_dom_small.todense(), r)
        err0 = np.linalg.norm(
            NeumannPolynomialPreconditioner(diag_dom_small, degree=0).apply(r) - exact)
        err3 = np.linalg.norm(
            NeumannPolynomialPreconditioner(diag_dom_small, degree=3).apply(r) - exact)
        assert err3 < err0

    def test_negative_degree_rejected(self, poisson_small):
        with pytest.raises(ValueError):
            NeumannPolynomialPreconditioner(poisson_small, degree=-1)

    @pytest.mark.parametrize("degree", [0, 1, 3, 6])
    def test_in_place_loop_matches_expression_form(self, diag_dom_small, rng, degree):
        """The allocation-free degree loop is bit-identical to the naive
        temporary-per-step formulation it replaced."""
        m = NeumannPolynomialPreconditioner(diag_dom_small, degree=degree)
        r = rng.standard_normal(diag_dom_small.shape[0])

        z = m._inv_diag * r
        term = z.copy()
        for _ in range(degree):
            term = term - m._inv_diag * m.A.matvec(term)
            z = z + term
        np.testing.assert_array_equal(m.apply(r), z)

    def test_length_validated(self, poisson_small):
        m = NeumannPolynomialPreconditioner(poisson_small, degree=1)
        with pytest.raises(ValueError):
            m.apply(np.ones(2))
