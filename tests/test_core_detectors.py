"""Unit tests for the SDC detectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.detectors import (
    CompositeDetector,
    DetectionResult,
    Detector,
    HessenbergBoundDetector,
    NonFiniteDetector,
    NormGrowthDetector,
    NullDetector,
)


class TestDetectionResult:
    def test_truthiness(self):
        assert bool(DetectionResult(True))
        assert not bool(DetectionResult(False))

    def test_base_detector_abstract(self):
        with pytest.raises(NotImplementedError):
            Detector().check_scalar(1.0)


class TestNullDetector:
    def test_never_flags(self):
        d = NullDetector()
        assert not d.check_scalar(1e308)
        assert not d.check_scalar(float("nan"))
        assert not d.check_vector(np.array([np.inf, 1.0]))


class TestNonFiniteDetector:
    def test_flags_nan_and_inf(self):
        d = NonFiniteDetector()
        assert d.check_scalar(float("nan"))
        assert d.check_scalar(float("inf"))
        assert d.check_scalar(float("-inf"))

    def test_passes_finite(self):
        d = NonFiniteDetector()
        assert not d.check_scalar(1e300)
        assert not d.check_scalar(0.0)

    def test_vector_check(self):
        d = NonFiniteDetector()
        assert d.check_vector(np.array([1.0, np.nan, 2.0]))
        assert not d.check_vector(np.array([1.0, 2.0]))


class TestHessenbergBoundDetector:
    def test_respects_bound(self):
        d = HessenbergBoundDetector(10.0)
        assert not d.check_scalar(9.99)
        assert not d.check_scalar(-10.0)
        assert d.check_scalar(10.01)
        assert d.check_scalar(-11.0)

    def test_result_payload(self):
        d = HessenbergBoundDetector(5.0)
        res = d.check_scalar(7.0, site="hessenberg")
        assert res.flagged
        assert res.bound == 5.0
        assert res.value == 7.0
        assert "hessenberg" in res.reason

    def test_nonfinite_flagged(self):
        d = HessenbergBoundDetector(5.0)
        assert d.check_scalar(float("nan"))
        assert d.check_scalar(float("inf"))

    def test_nonfinite_check_disabled(self):
        d = HessenbergBoundDetector(5.0, check_nonfinite=False)
        res = d.check_scalar(float("inf"))
        assert res.flagged  # inf still exceeds the bound numerically

    def test_slack(self):
        d = HessenbergBoundDetector(10.0, slack=2.0)
        assert d.effective_bound == 20.0
        assert not d.check_scalar(15.0)
        assert d.check_scalar(25.0)

    def test_vector_check_uses_norm(self):
        d = HessenbergBoundDetector(5.0)
        assert d.check_vector(np.full(100, 1.0))       # norm 10 > 5
        assert not d.check_vector(np.full(4, 1.0))     # norm 2 < 5

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("nan"), float("inf")])
    def test_invalid_bound_rejected(self, bad):
        with pytest.raises(ValueError):
            HessenbergBoundDetector(bad)

    def test_invalid_slack_rejected(self):
        with pytest.raises(ValueError):
            HessenbergBoundDetector(1.0, slack=0.0)

    def test_paper_fault_classes(self):
        """Class 1 faults (x1e150) are detectable; classes 2 and 3 are not."""
        correct = 3.7
        bound = 10.0
        d = HessenbergBoundDetector(bound)
        assert d.check_scalar(correct * 1e150)          # class 1: detected
        assert not d.check_scalar(correct * 10 ** -0.5)  # class 2: silent
        assert not d.check_scalar(correct * 1e-300)      # class 3: silent


class TestNormGrowthDetector:
    def test_flags_sudden_growth(self):
        d = NormGrowthDetector(factor=100.0)
        assert not d.check_scalar(1.0)
        assert not d.check_scalar(5.0)
        assert d.check_scalar(1e4)

    def test_reset_clears_reference(self):
        d = NormGrowthDetector(factor=10.0)
        d.check_scalar(1.0)
        d.reset()
        assert not d.check_scalar(1e6)  # no reference yet after reset

    def test_nonfinite_always_flagged(self):
        d = NormGrowthDetector()
        assert d.check_scalar(float("nan"))

    def test_factor_validated(self):
        with pytest.raises(ValueError):
            NormGrowthDetector(factor=1.0)


class TestCompositeDetector:
    def test_any_member_flags(self):
        comp = CompositeDetector([NullDetector(), HessenbergBoundDetector(5.0)])
        res = comp.check_scalar(7.0)
        assert res.flagged
        assert res.detector == "hessenberg_bound"

    def test_passes_when_no_member_flags(self):
        comp = CompositeDetector([NonFiniteDetector(), HessenbergBoundDetector(100.0)])
        assert not comp.check_scalar(50.0)

    def test_vector_dispatch(self):
        comp = CompositeDetector([NonFiniteDetector()])
        assert comp.check_vector(np.array([np.inf]))

    def test_reset_propagates(self):
        growth = NormGrowthDetector(factor=10.0)
        comp = CompositeDetector([growth])
        growth.check_scalar(1.0)
        comp.reset()
        assert not comp.check_scalar(1e6)

    def test_requires_members(self):
        with pytest.raises(ValueError):
            CompositeDetector([])
