"""Unit tests for matrix norms and the Hessenberg bound."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix
from repro.sparse.linear_operator import MatrixFreeOperator
from repro.sparse.norms import (
    frobenius_norm,
    hessenberg_bound,
    inf_norm,
    one_norm,
    two_norm_estimate,
)


class TestFrobenius:
    def test_matches_dense(self, rng):
        dense = rng.standard_normal((15, 15))
        dense[np.abs(dense) < 0.5] = 0.0
        m = CSRMatrix.from_dense(dense)
        assert frobenius_norm(m) == pytest.approx(np.linalg.norm(dense, "fro"), rel=1e-13)

    def test_dense_input(self, rng):
        dense = rng.standard_normal((6, 8))
        assert frobenius_norm(dense) == pytest.approx(np.linalg.norm(dense, "fro"))

    def test_scipy_input(self, poisson_small):
        assert frobenius_norm(poisson_small.to_scipy()) == pytest.approx(
            frobenius_norm(poisson_small))

    def test_rejects_unknown(self):
        with pytest.raises(TypeError):
            frobenius_norm("nope")

    def test_empty_matrix(self):
        m = CSRMatrix((3, 3), [0, 0, 0, 0], [], [])
        assert frobenius_norm(m) == 0.0


class TestInducedNorms:
    def test_one_norm_matches_numpy(self, rng):
        dense = rng.standard_normal((10, 12))
        dense[np.abs(dense) < 0.3] = 0.0
        m = CSRMatrix.from_dense(dense)
        assert one_norm(m) == pytest.approx(np.linalg.norm(dense, 1), rel=1e-13)
        assert one_norm(dense) == pytest.approx(np.linalg.norm(dense, 1), rel=1e-13)

    def test_inf_norm_matches_numpy(self, rng):
        dense = rng.standard_normal((10, 12))
        dense[np.abs(dense) < 0.3] = 0.0
        m = CSRMatrix.from_dense(dense)
        assert inf_norm(m) == pytest.approx(np.linalg.norm(dense, np.inf), rel=1e-13)
        assert inf_norm(dense) == pytest.approx(np.linalg.norm(dense, np.inf), rel=1e-13)

    def test_empty(self):
        m = CSRMatrix((2, 2), [0, 0, 0], [], [])
        assert one_norm(m) == 0.0
        assert inf_norm(m) == 0.0


class TestTwoNormEstimate:
    def test_matches_svd_on_dense(self, rng):
        dense = rng.standard_normal((30, 30))
        m = CSRMatrix.from_dense(dense)
        exact = np.linalg.svd(dense, compute_uv=False)[0]
        assert two_norm_estimate(m, tol=1e-12, maxiter=500) == pytest.approx(exact, rel=1e-4)

    def test_poisson_known_bound(self):
        # The 2-D Poisson matrix has eigenvalues in (0, 8); ||A||_2 < 8 and
        # approaches 8 as the grid grows (the paper's Table I lists 8).
        from repro.gallery.poisson import poisson2d

        sigma = two_norm_estimate(poisson2d(20), tol=1e-10, maxiter=1000)
        assert 7.0 < sigma < 8.0 + 1e-9

    def test_diagonal_operator(self):
        diag = np.array([1.0, -7.0, 3.0])
        op = MatrixFreeOperator((3, 3), matvec=lambda x: diag * x, rmatvec=lambda x: diag * x)
        assert two_norm_estimate(op, tol=1e-12) == pytest.approx(7.0, rel=1e-6)

    def test_zero_matrix(self):
        m = CSRMatrix((4, 4), [0, 0, 0, 0, 0], [], [])
        assert two_norm_estimate(m) == 0.0


class TestHessenbergBound:
    def test_frobenius_dominates_two_norm(self, poisson_small):
        fro = hessenberg_bound(poisson_small, method="frobenius")
        two = hessenberg_bound(poisson_small, method="two_norm")
        assert fro >= two > 0.0

    def test_exact_matches_svd(self, small_dense):
        exact = hessenberg_bound(small_dense, method="exact")
        assert exact == pytest.approx(np.linalg.svd(small_dense, compute_uv=False)[0])

    def test_exact_on_csr(self, poisson_small):
        exact = hessenberg_bound(poisson_small, method="exact")
        two = hessenberg_bound(poisson_small, method="two_norm")
        assert two == pytest.approx(exact, rel=1e-6)

    def test_unknown_method(self, poisson_small):
        with pytest.raises(ValueError):
            hessenberg_bound(poisson_small, method="bogus")

    def test_frobenius_requires_matrix(self):
        op = MatrixFreeOperator((3, 3), matvec=lambda x: x)
        with pytest.raises(TypeError):
            hessenberg_bound(op, method="frobenius")
