"""Unit tests for the baseline solvers (CG, rollback GMRES, SciPy wrapper)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.cg import cg
from repro.baselines.chen import gmres_with_rollback
from repro.baselines.scipy_wrappers import scipy_gmres
from repro.core.gmres import gmres
from repro.core.status import SolverStatus
from repro.faults.injector import FaultInjector
from repro.faults.models import ScalingFault
from repro.faults.schedule import InjectionSchedule
from repro.precond.jacobi import JacobiPreconditioner


class TestCG:
    def test_converges_on_spd(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        result = cg(poisson_medium, b, tol=1e-10, maxiter=500)
        assert result.converged
        np.testing.assert_allclose(poisson_medium.matvec(result.x), b, rtol=1e-7, atol=1e-8)

    def test_matches_gmres_solution(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        x_cg = cg(poisson_medium, b, tol=1e-11, maxiter=600).x
        x_gm = gmres(poisson_medium, b, tol=1e-11, maxiter=600).x
        np.testing.assert_allclose(x_cg, x_gm, rtol=1e-6, atol=1e-8)

    def test_preconditioned_cg_faster(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        plain = cg(poisson_medium, b, tol=1e-10, maxiter=600)
        pre = cg(poisson_medium, b, tol=1e-10, maxiter=600,
                 preconditioner=JacobiPreconditioner(poisson_medium))
        assert pre.converged
        assert pre.iterations <= plain.iterations + 1

    def test_zero_rhs(self, poisson_small):
        result = cg(poisson_small, np.zeros(poisson_small.shape[0]))
        assert result.converged
        assert result.iterations == 0

    def test_exact_initial_guess(self, poisson_small, rng):
        x = rng.standard_normal(poisson_small.shape[0])
        result = cg(poisson_small, poisson_small.matvec(x), x0=x, tol=1e-10)
        assert result.iterations == 0

    def test_max_iterations(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        result = cg(poisson_medium, b, tol=1e-14, maxiter=3)
        assert result.status is SolverStatus.MAX_ITERATIONS

    def test_struggles_on_nonsymmetric(self, circuit_problem_tiny):
        """The paper's point: CG is not applicable to the circuit problem."""
        p = circuit_problem_tiny
        result = cg(p.A, p.b, tol=1e-10, maxiter=p.n)
        gm = gmres(p.A, p.b, tol=1e-10, maxiter=p.n)
        # CG either fails outright or is much less accurate than GMRES here.
        assert (not result.converged) or result.residual_norm > 10 * gm.residual_norm

    def test_invalid_maxiter(self, poisson_small):
        with pytest.raises(ValueError):
            cg(poisson_small, np.ones(poisson_small.shape[0]), maxiter=0)

    def test_callable_preconditioner(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        inv_diag = 1.0 / poisson_medium.diagonal()
        result = cg(poisson_medium, b, tol=1e-10, maxiter=600,
                    preconditioner=lambda r: inv_diag * r)
        assert result.converged


class TestRollbackGMRES:
    def test_failure_free_converges(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        protected = gmres_with_rollback(poisson_medium, b, tol=1e-9, maxiter=600,
                                        check_interval=25)
        assert protected.converged
        assert protected.rollbacks == 0
        assert protected.verifications >= 1
        assert protected.extra_matvecs == protected.verifications

    def test_detects_and_rolls_back_persistent_corruption(self, poisson_medium, rng):
        """A persistent subdiag corruption breaks the residual invariant; the
        verification step must catch it (detections > 0)."""
        b = rng.standard_normal(poisson_medium.shape[0])
        injector = FaultInjector(
            ScalingFault(1e3),
            InjectionSchedule(site="subdiag", mgs_position=None, persistence="persistent"),
        )
        protected = gmres_with_rollback(poisson_medium, b, tol=1e-9, maxiter=200,
                                        check_interval=10, invariant_tol=1e-6,
                                        max_rollbacks=3, injector=injector)
        assert protected.detections > 0
        # With a *persistent* fault the scheme eventually gives up loudly.
        assert protected.result.status in (SolverStatus.FAULT_DETECTED,
                                           SolverStatus.MAX_ITERATIONS,
                                           SolverStatus.CONVERGED)

    def test_transient_fault_recovered(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        injector = FaultInjector(
            ScalingFault(1e150),
            InjectionSchedule(site="hessenberg", aggregate_inner_iteration=None,
                              mgs_position="first", persistence="transient"),
        )
        protected = gmres_with_rollback(poisson_medium, b, tol=1e-9, maxiter=600,
                                        check_interval=20, injector=injector)
        assert injector.injections_performed == 1
        assert protected.converged

    def test_invalid_check_interval(self, poisson_small):
        with pytest.raises(ValueError):
            gmres_with_rollback(poisson_small, np.ones(poisson_small.shape[0]),
                                check_interval=0)


class TestScipyWrapper:
    def test_matches_our_gmres(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        theirs = scipy_gmres(poisson_medium, b, tol=1e-10, maxiter=500, restart=500)
        ours = gmres(poisson_medium, b, tol=1e-10, maxiter=500)
        assert theirs.converged
        np.testing.assert_allclose(theirs.x, ours.x, rtol=1e-6, atol=1e-8)

    def test_history_collected(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.shape[0])
        result = scipy_gmres(poisson_small, b, tol=1e-8, maxiter=200, restart=50)
        assert len(result.history) > 0
