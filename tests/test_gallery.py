"""Unit tests for the matrix gallery and packaged test problems."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gallery.circuit import circuit_network, mult_dcop_surrogate
from repro.gallery.convection_diffusion import convection_diffusion_2d
from repro.gallery.poisson import poisson1d, poisson2d, poisson3d
from repro.gallery.problems import TestProblem, circuit_problem, paper_problems, poisson_problem
from repro.gallery.random_sparse import (
    diagonally_dominant,
    random_sparse,
    spd_random,
    tridiagonal,
)


class TestPoisson:
    def test_poisson1d_structure(self):
        A = poisson1d(5).todense()
        expected = np.diag(np.full(5, 2.0)) + np.diag(np.full(4, -1.0), 1) + np.diag(
            np.full(4, -1.0), -1)
        np.testing.assert_allclose(A, expected)

    def test_poisson2d_matches_kron_construction(self):
        n = 7
        T = poisson1d(n).todense()
        expected = np.kron(np.eye(n), T) + np.kron(T, np.eye(n)) - 2 * np.eye(n * n) + 2 * np.eye(n * n)
        # gallery('poisson', n) = kron(I, T) + kron(T, I) where T = tridiag(-1, 2, -1)
        expected = np.kron(np.eye(n), T) + np.kron(T, np.eye(n))
        np.testing.assert_allclose(poisson2d(n).todense(), expected)

    def test_poisson2d_paper_dimensions(self):
        # Paper Table I: 100x100 grid -> 10,000 rows, 49,600 nonzeros.
        A = poisson2d(100)
        assert A.shape == (10000, 10000)
        assert A.nnz == 49600

    def test_poisson2d_spd(self):
        A = poisson2d(6)
        dense = A.todense()
        np.testing.assert_allclose(dense, dense.T)
        eigvals = np.linalg.eigvalsh(dense)
        assert eigvals.min() > 0.0

    def test_poisson3d_structure(self):
        A = poisson3d(3)
        assert A.shape == (27, 27)
        np.testing.assert_allclose(A.diagonal(), np.full(27, 6.0))
        assert A.is_symmetric()

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            poisson2d(0)

    def test_poisson1d_single_point(self):
        A = poisson1d(1)
        np.testing.assert_allclose(A.todense(), [[2.0]])


class TestConvectionDiffusion:
    def test_nonsymmetric(self):
        A = convection_diffusion_2d(6, wind=(10.0, 20.0))
        assert A.is_pattern_symmetric()
        assert not A.is_symmetric()

    def test_zero_wind_is_scaled_poisson(self):
        n = 5
        A = convection_diffusion_2d(n, wind=(0.0, 0.0), diffusion=1.0)
        h = 1.0 / (n + 1)
        np.testing.assert_allclose(A.todense(), poisson2d(n).todense() / h**2)

    def test_rejects_nonpositive_diffusion(self):
        with pytest.raises(ValueError):
            convection_diffusion_2d(4, diffusion=0.0)

    def test_row_sums_nonnegative_diagonal(self):
        A = convection_diffusion_2d(5, wind=(7.0, -3.0))
        assert np.all(A.diagonal() > 0.0)


class TestCircuit:
    def test_shape_and_rank(self):
        A = circuit_network(150, seed=3)
        assert A.shape == (150, 150)
        assert A.has_full_structural_rank()

    def test_nonsymmetric(self):
        A = circuit_network(200, seed=1)
        assert not A.is_symmetric()

    def test_deterministic(self):
        a = circuit_network(100, seed=5)
        b = circuit_network(100, seed=5)
        np.testing.assert_array_equal(a.data, b.data)
        np.testing.assert_array_equal(a.indices, b.indices)

    def test_different_seeds_differ(self):
        a = circuit_network(100, seed=5)
        b = circuit_network(100, seed=6)
        assert a.nnz != b.nnz or not np.array_equal(a.data, b.data)

    def test_surrogate_defaults(self):
        A = mult_dcop_surrogate(300)
        assert A.shape == (300, 300)
        assert not A.is_symmetric()
        assert A.has_full_structural_rank()

    def test_ill_conditioned(self):
        from repro.experiments.table1 import condition_estimate

        A = mult_dcop_surrogate(400)
        cond = condition_estimate(A, method="dense")
        # Much worse conditioned than the Poisson problem (paper: 6.0e3).
        assert cond > 1e6

    def test_single_node(self):
        A = circuit_network(1, seed=0)
        assert A.shape == (1, 1)
        assert A.todense()[0, 0] != 0.0


class TestRandomGallery:
    def test_random_sparse_nonsingular(self):
        A = random_sparse(60, density=0.05, seed=2)
        assert np.linalg.matrix_rank(A.todense()) == 60

    def test_random_sparse_density_bounds(self):
        with pytest.raises(ValueError):
            random_sparse(10, density=0.0)
        with pytest.raises(ValueError):
            random_sparse(10, density=1.5)

    def test_diagonally_dominant(self):
        A = diagonally_dominant(40, density=0.1, dominance=2.5, seed=3).todense()
        off = np.abs(A).sum(axis=1) - np.abs(np.diag(A))
        assert np.all(np.abs(np.diag(A)) > off)

    def test_diagonally_dominant_requires_dominance(self):
        with pytest.raises(ValueError):
            diagonally_dominant(10, dominance=1.0)

    def test_tridiagonal(self):
        A = tridiagonal(5, lower=-1.0, diag=2.0, upper=-3.0).todense()
        assert A[1, 0] == -1.0
        assert A[0, 1] == -3.0
        assert A[2, 2] == 2.0

    def test_spd_random_is_spd(self):
        A = spd_random(25, density=0.2, shift=1.0, seed=4).todense()
        np.testing.assert_allclose(A, A.T, atol=1e-12)
        assert np.linalg.eigvalsh(A).min() > 0.0


class TestProblems:
    def test_poisson_problem_metadata(self):
        p = poisson_problem(grid_n=8)
        assert p.spd
        assert p.n == 64
        assert p.x_exact is not None
        # Manufactured RHS: b = A x_exact
        np.testing.assert_allclose(p.A.matvec(p.x_exact), p.b, rtol=1e-12)

    def test_circuit_problem_metadata(self):
        p = circuit_problem(150)
        assert not p.spd
        assert p.n == 150
        np.testing.assert_allclose(p.A.matvec(p.x_exact), p.b, rtol=1e-10)

    def test_residual_and_error_norm(self):
        p = poisson_problem(grid_n=6)
        assert p.residual_norm(p.x_exact) == pytest.approx(0.0, abs=1e-10)
        assert p.error_norm(p.x_exact) == pytest.approx(0.0, abs=1e-14)
        assert p.residual_norm(np.zeros(p.n)) == pytest.approx(np.linalg.norm(p.b))

    def test_error_norm_requires_exact(self, poisson_small):
        p = TestProblem(name="x", A=poisson_small, b=np.ones(poisson_small.shape[0]))
        with pytest.raises(ValueError):
            p.error_norm(np.zeros(p.n))

    def test_detector_bounds(self):
        p = poisson_problem(grid_n=6)
        bounds = p.detector_bounds()
        assert bounds["frobenius"] >= bounds["two_norm"] > 0.0

    def test_rhs_length_validated(self, poisson_small):
        with pytest.raises(ValueError):
            TestProblem(name="bad", A=poisson_small, b=np.ones(3))

    def test_default_x0_zero(self, poisson_small):
        p = TestProblem(name="x", A=poisson_small, b=np.ones(poisson_small.shape[0]))
        np.testing.assert_array_equal(p.x0, np.zeros(p.n))

    @pytest.mark.parametrize("scale,expected_grid", [("tiny", 10), ("small", 30)])
    def test_paper_problems_scales(self, scale, expected_grid):
        probs = paper_problems(scale)
        assert set(probs) == {"poisson", "circuit"}
        assert probs["poisson"].n == expected_grid ** 2

    def test_paper_problems_unknown_scale(self):
        with pytest.raises(ValueError):
            paper_problems("huge")
