"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.hessenberg import HessenbergMatrix
from repro.core.least_squares import solve_rank_revealing, solve_triangular
from repro.core.detectors import HessenbergBoundDetector
from repro.faults.bitflip import flip_bit
from repro.faults.models import ScalingFault
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.norms import frobenius_norm, inf_norm, one_norm, two_norm_estimate

# ----------------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------------

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                          allow_infinity=False)


@st.composite
def dense_matrices(draw, max_dim=8):
    rows = draw(st.integers(min_value=1, max_value=max_dim))
    cols = draw(st.integers(min_value=1, max_value=max_dim))
    return draw(hnp.arrays(np.float64, (rows, cols), elements=finite_floats))


@st.composite
def square_dense_matrices(draw, max_dim=8):
    n = draw(st.integers(min_value=1, max_value=max_dim))
    return draw(hnp.arrays(np.float64, (n, n), elements=finite_floats))


@st.composite
def coo_triplets(draw, max_dim=10, max_nnz=30):
    rows = draw(st.integers(min_value=1, max_value=max_dim))
    cols = draw(st.integers(min_value=1, max_value=max_dim))
    nnz = draw(st.integers(min_value=0, max_value=max_nnz))
    r = draw(hnp.arrays(np.int64, (nnz,), elements=st.integers(0, rows - 1)))
    c = draw(hnp.arrays(np.int64, (nnz,), elements=st.integers(0, cols - 1)))
    v = draw(hnp.arrays(np.float64, (nnz,), elements=finite_floats))
    return (rows, cols), r, c, v


# ----------------------------------------------------------------------------
# sparse substrate properties
# ----------------------------------------------------------------------------

class TestSparseProperties:
    @given(coo_triplets())
    @settings(max_examples=60, deadline=None)
    def test_coo_to_csr_preserves_dense(self, triplets):
        shape, r, c, v = triplets
        coo = COOMatrix(shape, rows=r, cols=c, values=v)
        np.testing.assert_allclose(coo.tocsr().todense(), coo.todense(), rtol=1e-12, atol=1e-12)

    @given(dense_matrices(), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_spmv_matches_dense(self, dense, seed):
        m = CSRMatrix.from_dense(dense)
        x = np.random.default_rng(seed).standard_normal(dense.shape[1])
        np.testing.assert_allclose(m.matvec(x), dense @ x, rtol=1e-10, atol=1e-8)

    @given(dense_matrices(), st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_rmatvec_is_transpose_matvec(self, dense, seed):
        m = CSRMatrix.from_dense(dense)
        y = np.random.default_rng(seed).standard_normal(dense.shape[0])
        np.testing.assert_allclose(m.rmatvec(y), m.transpose().matvec(y), rtol=1e-10, atol=1e-8)

    @given(dense_matrices())
    @settings(max_examples=40, deadline=None)
    def test_transpose_involution(self, dense):
        m = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(m.transpose().transpose().todense(), m.todense())

    @given(square_dense_matrices())
    @settings(max_examples=40, deadline=None)
    def test_norm_ordering(self, dense):
        """||A||_2 <= ||A||_F and ||A||_2^2 <= ||A||_1 * ||A||_inf."""
        m = CSRMatrix.from_dense(dense)
        fro = frobenius_norm(m)
        two = two_norm_estimate(m, tol=1e-10, maxiter=500)
        assert two <= fro * (1 + 1e-8) + 1e-12
        assert two ** 2 <= one_norm(m) * inf_norm(m) * (1 + 1e-8) + 1e-12

    @given(square_dense_matrices())
    @settings(max_examples=30, deadline=None)
    def test_add_scale_linearity(self, dense):
        m = CSRMatrix.from_dense(dense)
        combined = m.scale(2.0).add(m.scale(-2.0))
        if combined.nnz:
            assert np.abs(combined.data).max() <= 1e-9 * max(np.abs(dense).max(), 1.0)


# ----------------------------------------------------------------------------
# bit flips and fault models
# ----------------------------------------------------------------------------

class TestFaultProperties:
    @given(st.floats(allow_nan=False), st.integers(0, 63))
    @settings(max_examples=200, deadline=None)
    def test_bitflip_involution(self, value, bit):
        assert flip_bit(flip_bit(value, bit), bit) == value

    @given(st.floats(min_value=-1e300, max_value=1e300, allow_nan=False), st.integers(0, 63))
    @settings(max_examples=200, deadline=None)
    def test_bitflip_changes_value(self, value, bit):
        flipped = flip_bit(value, bit)
        # A single bit flip always changes the stored representation; the
        # value itself changes unless it becomes NaN (exponent flips on Inf).
        if not np.isnan(flipped):
            assert flipped != value or (value == 0.0 and flipped == -0.0 and
                                        np.signbit(flipped) != np.signbit(value))

    @given(finite_floats, st.floats(min_value=1e-310, max_value=1e300))
    @settings(max_examples=100, deadline=None)
    def test_scaling_fault_magnitude(self, value, factor):
        corrupted = ScalingFault(factor).corrupt(value)
        if value != 0.0 and np.isfinite(value * factor):
            assert corrupted == pytest.approx(value * factor)


# ----------------------------------------------------------------------------
# detector properties
# ----------------------------------------------------------------------------

class TestDetectorProperties:
    @given(st.floats(min_value=1e-3, max_value=1e3),
           st.floats(min_value=-1.0, max_value=1.0))
    @settings(max_examples=100, deadline=None)
    def test_values_within_bound_never_flagged(self, bound, fraction):
        detector = HessenbergBoundDetector(bound)
        assert not detector.check_scalar(fraction * bound).flagged

    @given(st.floats(min_value=1e-3, max_value=1e3),
           st.floats(min_value=1.0 + 1e-9, max_value=1e6))
    @settings(max_examples=100, deadline=None)
    def test_values_beyond_bound_always_flagged(self, bound, factor):
        detector = HessenbergBoundDetector(bound)
        assume(bound * factor > bound)  # guard against rounding at the boundary
        assert detector.check_scalar(bound * factor).flagged
        assert detector.check_scalar(-bound * factor).flagged


# ----------------------------------------------------------------------------
# Hessenberg / least-squares properties
# ----------------------------------------------------------------------------

@st.composite
def hessenberg_columns(draw, max_k=6):
    k = draw(st.integers(min_value=1, max_value=max_k))
    cols = []
    for j in range(k):
        col = draw(hnp.arrays(np.float64, (j + 2,),
                              elements=st.floats(min_value=-100, max_value=100,
                                                 allow_nan=False)))
        # Keep the subdiagonal entry away from zero so the QR stays well posed.
        col[j + 1] = abs(col[j + 1]) + 1.0
        cols.append(col)
    beta = draw(st.floats(min_value=0.1, max_value=100.0))
    return beta, cols


class TestHessenbergProperties:
    @given(hessenberg_columns())
    @settings(max_examples=60, deadline=None)
    def test_givens_residual_matches_lstsq(self, data):
        beta, cols = data
        k = len(cols)
        hess = HessenbergMatrix(k, beta=beta)
        H = np.zeros((k + 1, k))
        residual = beta
        for j, col in enumerate(cols):
            H[: j + 2, j] = col
            residual = hess.add_column(col)
        e1 = np.zeros(k + 1)
        e1[0] = beta
        y, *_ = np.linalg.lstsq(H, e1, rcond=None)
        true_residual = np.linalg.norm(H @ y - e1)
        assert residual == pytest.approx(true_residual, rel=1e-8, abs=1e-8)

    @given(hessenberg_columns())
    @settings(max_examples=60, deadline=None)
    def test_residual_never_increases(self, data):
        beta, cols = data
        hess = HessenbergMatrix(len(cols), beta=beta)
        previous = beta
        for col in cols:
            current = hess.add_column(col)
            assert current <= previous * (1 + 1e-10) + 1e-12
            previous = current


class TestLeastSquaresProperties:
    @given(square_dense_matrices(max_dim=6), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_triangular_solve_matches_numpy(self, dense, seed):
        # Shift by n + sum(|diag|) so no diagonal entry can cancel to zero
        # (entry d becomes d + |d| + rest >= n > 0); the plain n*I shift made
        # R singular for e.g. dense=[[-1.]] (found by hypothesis).
        shift = dense.shape[0] + np.abs(np.diag(dense)).sum()
        R = np.triu(dense) + shift * np.eye(dense.shape[0])
        rhs = np.random.default_rng(seed).standard_normal(dense.shape[0])
        np.testing.assert_allclose(solve_triangular(R, rhs), np.linalg.solve(R, rhs),
                                   rtol=1e-8, atol=1e-8)

    @given(dense_matrices(max_dim=6), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_rank_revealing_residual_optimality(self, dense, seed):
        """The truncated-SVD solution is a true least-squares minimizer:
        no random perturbation of it achieves a smaller residual."""
        rng = np.random.default_rng(seed)
        rhs = rng.standard_normal(dense.shape[0])
        y, rank = solve_rank_revealing(dense, rhs, tol=1e-10)
        base = np.linalg.norm(dense @ y - rhs)
        for _ in range(3):
            perturbed = y + rng.standard_normal(y.shape) * 1e-3
            assert base <= np.linalg.norm(dense @ perturbed - rhs) + 1e-9

    @given(dense_matrices(max_dim=6), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_rank_revealing_always_finite(self, dense, seed):
        rhs = np.random.default_rng(seed).standard_normal(dense.shape[0])
        y, _ = solve_rank_revealing(dense, rhs)
        assert np.all(np.isfinite(y))
