"""Unit tests for the CSR matrix and its kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


class TestConstructionValidation:
    def test_valid_matrix(self):
        m = CSRMatrix((2, 3), [0, 2, 3], [0, 2, 1], [1.0, 2.0, 3.0])
        assert m.nnz == 3

    def test_bad_indptr_length(self):
        with pytest.raises(ValueError, match="indptr"):
            CSRMatrix((2, 2), [0, 1], [0], [1.0])

    def test_bad_indptr_start(self):
        with pytest.raises(ValueError, match="indptr\\[0\\]"):
            CSRMatrix((2, 2), [1, 1, 2], [0, 1], [1.0, 1.0])

    def test_indptr_not_monotone(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRMatrix((3, 3), [0, 2, 1, 3], [0, 1, 2], [1.0, 1.0, 1.0])

    def test_column_out_of_bounds(self):
        with pytest.raises(IndexError):
            CSRMatrix((2, 2), [0, 1, 2], [0, 5], [1.0, 1.0])

    def test_unsorted_row_rejected(self):
        # The triangular-solve layer and ILU(0) rely on the lower|diag|upper
        # layout of sorted rows; an unsorted row must fail loudly instead of
        # silently producing wrong factors.
        with pytest.raises(ValueError, match="sorted within each row"):
            CSRMatrix((2, 2), [0, 1, 3], [0, 1, 0], [2.0, 3.0, 1.0])

    def test_duplicate_columns_still_allowed(self):
        # Duplicates are part of the validated surface (reductions sum them)
        # and are non-decreasing, so the sortedness check keeps passing them.
        m = CSRMatrix((2, 2), [0, 2, 3], [0, 0, 1], [1.5, 2.5, 7.0])
        assert m.nnz == 3

    def test_data_index_mismatch(self):
        with pytest.raises(ValueError, match="same length"):
            CSRMatrix((2, 2), [0, 1, 2], [0, 1], [1.0])


class TestConversions:
    def test_from_dense_roundtrip(self, rng):
        dense = rng.standard_normal((9, 7))
        dense[np.abs(dense) < 0.5] = 0.0
        m = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(m.todense(), dense)

    def test_identity(self):
        eye = CSRMatrix.identity(5)
        np.testing.assert_allclose(eye.todense(), np.eye(5))

    def test_tocoo_roundtrip(self, poisson_small):
        back = poisson_small.tocoo().tocsr()
        np.testing.assert_allclose(back.todense(), poisson_small.todense())

    def test_scipy_roundtrip(self, poisson_small):
        sp = poisson_small.to_scipy()
        back = CSRMatrix.from_scipy(sp)
        np.testing.assert_allclose(back.todense(), poisson_small.todense())

    def test_from_coo_empty(self):
        m = COOMatrix((4, 4)).tocsr()
        assert m.nnz == 0
        np.testing.assert_array_equal(m.matvec(np.ones(4)), np.zeros(4))


class TestMatvec:
    def test_matches_dense(self, rng):
        dense = rng.standard_normal((20, 20))
        dense[np.abs(dense) < 0.7] = 0.0
        m = CSRMatrix.from_dense(dense)
        x = rng.standard_normal(20)
        np.testing.assert_allclose(m.matvec(x), dense @ x, rtol=1e-13)

    def test_matmul_operator(self, poisson_small, rng):
        x = rng.standard_normal(poisson_small.shape[1])
        np.testing.assert_allclose(poisson_small @ x, poisson_small.matvec(x))

    def test_empty_rows(self):
        dense = np.zeros((4, 4))
        dense[1, 2] = 3.0
        m = CSRMatrix.from_dense(dense)
        y = m.matvec(np.ones(4))
        np.testing.assert_allclose(y, [0.0, 3.0, 0.0, 0.0])

    def test_dimension_mismatch(self, poisson_small):
        with pytest.raises(ValueError, match="dimension mismatch"):
            poisson_small.matvec(np.ones(poisson_small.shape[1] + 1))

    def test_rmatvec_matches_dense(self, rng):
        dense = rng.standard_normal((8, 11))
        dense[np.abs(dense) < 0.5] = 0.0
        m = CSRMatrix.from_dense(dense)
        x = rng.standard_normal(8)
        np.testing.assert_allclose(m.rmatvec(x), dense.T @ x, rtol=1e-13)

    def test_rmatvec_dimension_mismatch(self, poisson_small):
        with pytest.raises(ValueError):
            poisson_small.rmatvec(np.ones(poisson_small.shape[0] + 2))


class TestRowDiagonal:
    def test_row_view(self, poisson_small):
        cols, vals = poisson_small.row(0)
        assert 0 in cols
        assert vals[list(cols).index(0)] == 4.0

    def test_row_out_of_bounds(self, poisson_small):
        with pytest.raises(IndexError):
            poisson_small.row(poisson_small.shape[0])

    def test_diagonal(self, poisson_small):
        np.testing.assert_allclose(poisson_small.diagonal(),
                                   np.full(poisson_small.shape[0], 4.0))

    def test_diagonal_with_missing_entries(self):
        dense = np.array([[0.0, 1.0], [2.0, 5.0]])
        m = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(m.diagonal(), [0.0, 5.0])


class TestAlgebra:
    def test_transpose(self, nonsym_small):
        np.testing.assert_allclose(nonsym_small.transpose().todense(),
                                   nonsym_small.todense().T)

    def test_scale(self, poisson_small):
        np.testing.assert_allclose(poisson_small.scale(2.5).todense(),
                                   2.5 * poisson_small.todense())

    def test_add(self, poisson_small):
        s = poisson_small.add(poisson_small.scale(-1.0))
        assert np.abs(s.todense()).max() == 0.0

    def test_add_shape_mismatch(self, poisson_small):
        other = CSRMatrix.identity(poisson_small.shape[0] + 1)
        with pytest.raises(ValueError):
            poisson_small.add(other)

    def test_copy_independent(self, poisson_small):
        c = poisson_small.copy()
        c.data[:] = 0.0
        assert np.abs(poisson_small.data).max() > 0.0


class TestStructuralQueries:
    def test_poisson_pattern_symmetric(self, poisson_small):
        assert poisson_small.is_pattern_symmetric()
        assert poisson_small.is_symmetric()

    def test_nonsymmetric_values(self, nonsym_small):
        # convection-diffusion: symmetric pattern but nonsymmetric values
        assert nonsym_small.is_pattern_symmetric()
        assert not nonsym_small.is_symmetric()

    def test_nonsymmetric_pattern(self):
        dense = np.array([[1.0, 2.0], [0.0, 1.0]])
        m = CSRMatrix.from_dense(dense)
        assert not m.is_pattern_symmetric()

    def test_rectangular_not_symmetric(self):
        m = CSRMatrix.from_dense(np.ones((2, 3)))
        assert not m.is_pattern_symmetric()
        assert not m.is_symmetric()

    def test_structural_full_rank_poisson(self, poisson_small):
        assert poisson_small.has_full_structural_rank()

    def test_structural_rank_deficient(self):
        dense = np.zeros((3, 3))
        dense[0, 0] = 1.0
        dense[1, 0] = 1.0  # column 1 and 2 empty -> rank deficient
        m = CSRMatrix.from_dense(dense)
        assert not m.has_full_structural_rank()

    def test_drop_small(self):
        dense = np.array([[1.0, 1e-15], [1e-16, 2.0]])
        m = CSRMatrix.from_dense(dense)
        pruned = m.drop_small(1e-12)
        assert pruned.nnz == 2

    def test_structural_rank_fallback_matches(self, poisson_small):
        # The pure-Python fallback should agree with the scipy-based path.
        n = poisson_small.shape[0]
        assert poisson_small._structural_rank_fallback() == n


class TestStructureCaches:
    """The cached kernels (matvec structure, row_ids, vectorized diagonal)."""

    def test_diagonal_sums_duplicates(self):
        # The validating constructor allows duplicate (i, i) entries; they
        # must be summed, exactly as the old per-row loop did.
        m = CSRMatrix((2, 2), indptr=[0, 2, 3], indices=[0, 0, 1],
                      data=[1.5, 2.5, 7.0])
        np.testing.assert_allclose(m.diagonal(), [4.0, 7.0])

    def test_diagonal_rectangular(self):
        dense = np.array([[1.0, 0.0, 2.0], [0.0, 3.0, 0.0]])
        m = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(m.diagonal(), [1.0, 3.0])
        np.testing.assert_allclose(m.transpose().diagonal(), [1.0, 3.0])

    def test_diagonal_empty(self):
        m = CSRMatrix((3, 3), indptr=[0, 0, 0, 0], indices=[], data=[])
        np.testing.assert_allclose(m.diagonal(), np.zeros(3))

    def test_matvec_cache_with_empty_rows(self, rng):
        dense = np.array([[1.0, 2.0, 0.0],
                          [0.0, 0.0, 0.0],
                          [0.0, 0.0, 3.0]])
        m = CSRMatrix.from_dense(dense)
        x = rng.standard_normal(3)
        expected = dense @ x
        np.testing.assert_allclose(m.matvec(x), expected)
        # Second call exercises the cached structure.
        np.testing.assert_allclose(m.matvec(x), expected)

    def test_matvec_repeat_consistency(self, poisson_small, rng):
        x = rng.standard_normal(poisson_small.shape[1])
        first = poisson_small.matvec(x)
        second = poisson_small.matvec(x)
        assert first is not second
        np.testing.assert_array_equal(first, second)

    def test_row_ids_matches_repeat(self, poisson_small):
        expected = np.repeat(np.arange(poisson_small.shape[0]),
                             np.diff(poisson_small.indptr))
        np.testing.assert_array_equal(poisson_small.row_ids, expected)

    def test_pickle_drops_caches(self, poisson_small, rng):
        import pickle

        x = rng.standard_normal(poisson_small.shape[1])
        baseline = poisson_small.matvec(x)
        poisson_small.row_ids  # populate caches
        clone = pickle.loads(pickle.dumps(poisson_small))
        assert clone._structure_cache is None
        assert clone._row_ids_cache is None
        np.testing.assert_array_equal(clone.matvec(x), baseline)
        np.testing.assert_allclose(clone.todense(), poisson_small.todense())
