"""Unit tests for the COO matrix builder."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.coo import COOMatrix


class TestConstruction:
    def test_empty(self):
        m = COOMatrix((3, 4))
        assert m.shape == (3, 4)
        assert m.nnz == 0
        np.testing.assert_array_equal(m.todense(), np.zeros((3, 4)))

    def test_triplets(self):
        m = COOMatrix((2, 2), rows=[0, 1], cols=[1, 0], values=[2.0, 3.0])
        dense = m.todense()
        assert dense[0, 1] == 2.0
        assert dense[1, 0] == 3.0
        assert m.nnz == 2

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            COOMatrix((2, 2), rows=[0], cols=[0, 1], values=[1.0])

    def test_negative_shape_rejected(self):
        with pytest.raises(ValueError):
            COOMatrix((-1, 2))

    def test_out_of_bounds_rejected(self):
        with pytest.raises(IndexError):
            COOMatrix((2, 2), rows=[2], cols=[0], values=[1.0])
        with pytest.raises(IndexError):
            COOMatrix((2, 2), rows=[0], cols=[5], values=[1.0])


class TestAppendExtend:
    def test_append(self):
        m = COOMatrix((3, 3))
        m.append(0, 0, 1.0)
        m.append(2, 1, -4.0)
        assert m.nnz == 2
        assert m.todense()[2, 1] == -4.0

    def test_append_out_of_bounds(self):
        m = COOMatrix((2, 2))
        with pytest.raises(IndexError):
            m.append(3, 0, 1.0)

    def test_extend(self):
        m = COOMatrix((4, 4))
        m.extend([0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0])
        assert m.nnz == 3

    def test_extend_validates(self):
        m = COOMatrix((2, 2))
        with pytest.raises(IndexError):
            m.extend([0, 5], [0, 0], [1.0, 1.0])


class TestDuplicatesAndConversion:
    def test_duplicates_summed_in_dense(self):
        m = COOMatrix((2, 2), rows=[0, 0], cols=[0, 0], values=[1.5, 2.5])
        assert m.todense()[0, 0] == 4.0

    def test_duplicates_summed_in_csr(self):
        m = COOMatrix((2, 2), rows=[0, 0, 1], cols=[0, 0, 1], values=[1.0, 2.0, 5.0])
        csr = m.tocsr()
        assert csr.nnz == 2
        np.testing.assert_allclose(csr.todense(), [[3.0, 0.0], [0.0, 5.0]])

    def test_from_dense_roundtrip(self, rng):
        dense = rng.standard_normal((7, 5))
        dense[np.abs(dense) < 0.6] = 0.0
        m = COOMatrix.from_dense(dense)
        np.testing.assert_allclose(m.todense(), dense)

    def test_from_dense_tolerance(self):
        dense = np.array([[1.0, 1e-14], [0.0, 2.0]])
        m = COOMatrix.from_dense(dense, tol=1e-12)
        assert m.nnz == 2

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError):
            COOMatrix.from_dense(np.ones(3))


class TestTranspose:
    def test_transpose_swaps(self, rng):
        dense = rng.standard_normal((4, 6))
        m = COOMatrix.from_dense(dense)
        np.testing.assert_allclose(m.transpose().todense(), dense.T)

    def test_transpose_shape(self):
        m = COOMatrix((2, 5))
        assert m.transpose().shape == (5, 2)
