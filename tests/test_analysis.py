"""Tests for :mod:`repro.analysis` — framework, the five rules, CLI,
and the self-hosting acceptance gate.

Fixture trees are written under ``tmp_path`` mirroring the package layout
(``<tmp>/repro/service/x.py``) so rule path filters and the scan-relative
path convention (``repro/...``) are exercised exactly as in production.
"""

import json
import os
import textwrap
import threading

import pytest

from repro.analysis import Finding, run_lint
from repro.analysis.cli import main as lint_main
from repro.analysis.rules import (AtomicDurabilityRule, DeterminismRule,
                                  EventKindExhaustivenessRule,
                                  ForkLockSafetyRule,
                                  RegistrySpecCoherenceRule)
from repro.results.store import RunManifest, RunStore

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")


def write_tree(tmp_path, files):
    """Write ``{rel: source}`` under tmp_path; return the scan target."""
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return str(tmp_path / "repro")


def lint_fixture(tmp_path, files, rule_cls):
    return run_lint(write_tree(tmp_path, files), rules=[rule_cls()])


# --------------------------------------------------------------------- #
# framework: pragmas, baselines, parse failures, report schema
# --------------------------------------------------------------------- #
class TestFramework:
    VIOLATION = {
        "repro/service/writer.py": """\
            import json

            def save(path, payload):
                with open(path, "w") as fh:
                    json.dump(payload, fh)
            """,
    }

    def test_violation_is_active_and_fails(self, tmp_path):
        report = lint_fixture(tmp_path, self.VIOLATION, AtomicDurabilityRule)
        assert report.exit_code == 1
        assert {f.rule for f in report.active} == {"RPR001"}
        assert all(f.file == "repro/service/writer.py" for f in report.active)

    def test_pragma_suppresses_one_line(self, tmp_path):
        files = {
            "repro/service/writer.py": """\
                def save(path, text):
                    with open(path, "w") as fh:  # repro: allow(RPR001)
                        fh.write(text)
                """,
        }
        report = lint_fixture(tmp_path, files, AtomicDurabilityRule)
        assert report.exit_code == 0
        assert len(report.suppressed) == 1 and not report.active

    def test_star_pragma_suppresses_every_rule(self, tmp_path):
        files = {
            "repro/service/writer.py": """\
                def save(path, text):
                    with open(path, "w") as fh:  # repro: allow(*)
                        fh.write(text)
                """,
        }
        report = lint_fixture(tmp_path, files, AtomicDurabilityRule)
        assert report.exit_code == 0 and len(report.suppressed) == 1

    def test_pragma_on_other_line_does_not_suppress(self, tmp_path):
        files = {
            "repro/service/writer.py": """\
                # repro: allow(RPR001)
                def save(path, text):
                    with open(path, "w") as fh:
                        fh.write(text)
                """,
        }
        report = lint_fixture(tmp_path, files, AtomicDurabilityRule)
        assert report.exit_code == 1

    def test_baseline_grandfathers_and_detects_stale(self, tmp_path):
        target = write_tree(tmp_path, self.VIOLATION)
        first = run_lint(target, rules=[AtomicDurabilityRule()])
        entries = [{"rule": f.rule, "file": f.file, "message": f.message}
                   for f in first.findings]
        entries.append({"rule": "RPR001", "file": "repro/service/gone.py",
                        "message": "a finding that no longer exists"})
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"version": 1, "findings": entries}))
        report = run_lint(target, rules=[AtomicDurabilityRule()],
                          baseline=str(baseline))
        assert report.exit_code == 0
        assert len(report.baselined) == len(first.findings)
        assert report.stale_baseline == [
            ("RPR001", "repro/service/gone.py",
             "a finding that no longer exists")]

    def test_malformed_baseline_raises(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"findings": [{"rule": "RPR001"}]}))
        with pytest.raises(ValueError, match="malformed baseline entry"):
            run_lint(str(tmp_path / "repro"), rules=[],
                     baseline=str(baseline))

    def test_parse_failure_reported_as_rpr000(self, tmp_path):
        files = {"repro/service/broken.py": "def oops(:\n"}
        report = lint_fixture(tmp_path, files, AtomicDurabilityRule)
        assert report.exit_code == 1
        assert [f.rule for f in report.active] == ["RPR000"]
        assert "does not parse" in report.active[0].message

    def test_json_report_schema(self, tmp_path):
        report = lint_fixture(tmp_path, self.VIOLATION, AtomicDurabilityRule)
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["version"] == 1
        assert set(payload["summary"]) == {
            "files", "findings", "active", "suppressed", "baselined",
            "severities", "stale_baseline"}
        assert payload["summary"]["active"] == len(report.active)
        for entry in payload["findings"]:
            assert {"rule", "severity", "file", "line", "col",
                    "message"} <= set(entry)
        assert payload["rules"][0]["id"] == "RPR001"

    def test_findings_sorted_by_location(self, tmp_path):
        files = {
            "repro/service/b.py": """\
                def save(path, text):
                    with open(path, "w") as fh:
                        fh.write(text)
                """,
            "repro/service/a.py": """\
                def save(path, text):
                    with open(path, "w") as fh:
                        fh.write(text)
                """,
        }
        report = lint_fixture(tmp_path, files, AtomicDurabilityRule)
        assert [f.file for f in report.findings] == [
            "repro/service/a.py", "repro/service/b.py"]

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError, match="severity"):
            Finding(rule="RPRX", severity="fatal", file="x.py", line=1,
                    col=0, message="nope")


# --------------------------------------------------------------------- #
# RPR001 atomic durability
# --------------------------------------------------------------------- #
class TestAtomicDurabilityRule:
    def test_catches_bare_write_and_json_dump(self, tmp_path):
        report = lint_fixture(tmp_path, TestFramework.VIOLATION,
                              AtomicDurabilityRule)
        messages = [f.message for f in report.active]
        assert any("truncating open" in m for m in messages)
        assert any("json.dump" in m for m in messages)

    def test_tmp_then_replace_is_clean(self, tmp_path):
        files = {
            "repro/service/writer.py": """\
                import os

                def save(path, text):
                    tmp = f"{path}.{os.getpid()}.tmp"
                    with open(tmp, "w") as fh:
                        fh.write(text)
                    os.replace(tmp, path)
                """,
        }
        report = lint_fixture(tmp_path, files, AtomicDurabilityRule)
        assert report.findings == []

    def test_append_mode_is_clean(self, tmp_path):
        files = {
            "repro/service/writer.py": """\
                def append(path, line):
                    with open(path, "a") as fh:
                        fh.write(line)
                """,
        }
        report = lint_fixture(tmp_path, files, AtomicDurabilityRule)
        assert report.findings == []

    def test_out_of_scope_module_not_checked(self, tmp_path):
        files = {
            "repro/core/notdurable.py": """\
                import json

                def save(path, payload):
                    with open(path, "w") as fh:
                        json.dump(payload, fh)
                """,
        }
        report = lint_fixture(tmp_path, files, AtomicDurabilityRule)
        assert report.findings == []

    def test_unlocked_rmw_flagged_locked_clean(self, tmp_path):
        files = {
            "repro/service/store.py": """\
                class Store:
                    def racy_merge(self, key, value):
                        record = self.load(key)
                        record[key] = value
                        self.save(record)

                    def safe_merge(self, key, value):
                        with self.lock():
                            record = self.load(key)
                            record[key] = value
                            self.save(record)
                """,
        }
        report = lint_fixture(tmp_path, files, AtomicDurabilityRule)
        assert len(report.active) == 1
        assert "racy_merge" in report.active[0].message
        assert "lock" in report.active[0].message


# --------------------------------------------------------------------- #
# RPR002 determinism
# --------------------------------------------------------------------- #
class TestDeterminismRule:
    def test_catches_wall_clock_and_unseeded_rng(self, tmp_path):
        files = {
            "repro/core/trial.py": """\
                import random
                import time
                import numpy as np

                def jitter():
                    stamp = time.time()
                    noise = random.random()
                    draw = np.random.rand(3)
                    rng = np.random.default_rng()
                    return stamp, noise, draw, rng
                """,
        }
        report = lint_fixture(tmp_path, files, DeterminismRule)
        messages = " | ".join(f.message for f in report.active)
        assert len(report.active) == 4
        assert "time.time()" in messages
        assert "random.random()" in messages
        assert "np.random.rand()" in messages
        assert "no seed" in messages

    def test_seeded_generator_is_clean(self, tmp_path):
        files = {
            "repro/faults/inject.py": """\
                import numpy as np

                def trial_rng(seed, index):
                    return np.random.default_rng((seed & 0xFFFFFFFF, index))
                """,
        }
        report = lint_fixture(tmp_path, files, DeterminismRule)
        assert report.findings == []

    def test_catches_set_iteration_sorted_is_clean(self, tmp_path):
        files = {
            "repro/exec/plan.py": """\
                def order(indices):
                    bad = [i for i in set(indices)]
                    good = [i for i in sorted(set(indices))]
                    for item in {1, 2, 3}:
                        bad.append(item)
                    return bad, good
                """,
        }
        report = lint_fixture(tmp_path, files, DeterminismRule)
        assert len(report.active) == 2
        assert all("set" in f.message for f in report.active)

    def test_out_of_scope_module_not_checked(self, tmp_path):
        files = {
            "repro/results/timing.py": """\
                import time

                def now():
                    return time.time()
                """,
        }
        report = lint_fixture(tmp_path, files, DeterminismRule)
        assert report.findings == []

    def test_pragma_allows_infrastructure_wall_clock(self, tmp_path):
        files = {
            "repro/exec/heartbeat.py": """\
                import time

                def stamp():
                    return time.time()  # repro: allow(RPR002)
                """,
        }
        report = lint_fixture(tmp_path, files, DeterminismRule)
        assert report.exit_code == 0 and len(report.suppressed) == 1


# --------------------------------------------------------------------- #
# RPR003 registry/spec coherence (semantic; probes the live library)
# --------------------------------------------------------------------- #
class TestRegistrySpecCoherenceRule:
    def test_gated_off_on_fixture_trees(self, tmp_path):
        files = {"repro/other.py": "x = 1\n"}
        report = lint_fixture(tmp_path, files, RegistrySpecCoherenceRule)
        assert report.findings == []

    def test_clean_on_real_tree(self):
        report = run_lint(SRC_REPRO, rules=[RegistrySpecCoherenceRule()])
        assert report.active == [], "\n".join(
            f.render() for f in report.active)

    def test_catches_unbindable_registry_entry(self):
        from repro.registry import registry

        @registry.register("detector", "rpr003-bogus",
                           positional=("no_such_param",))
        def _bogus(ctx):
            return None

        try:
            report = run_lint(SRC_REPRO,
                              rules=[RegistrySpecCoherenceRule()])
            hits = [f for f in report.active
                    if "rpr003-bogus" in f.message]
            assert hits and "no_such_param" in hits[0].message
        finally:
            del registry._spaces["detector"]["rpr003-bogus"]

    def test_catches_factory_without_context_param(self):
        from repro.registry import registry

        @registry.register("detector", "rpr003-noctx")
        def _noctx(value):
            return None

        try:
            report = run_lint(SRC_REPRO,
                              rules=[RegistrySpecCoherenceRule()])
            hits = [f for f in report.active
                    if "rpr003-noctx" in f.message]
            assert hits and "ResolveContext" in hits[0].message
        finally:
            del registry._spaces["detector"]["rpr003-noctx"]

    def test_catches_bogus_cli_flag_mapping(self, monkeypatch):
        from repro.experiments import runner

        monkeypatch.setitem(runner.SPEC_FLAG_DESTS,
                            "bogus_flag", "no_such_field")
        report = run_lint(SRC_REPRO, rules=[RegistrySpecCoherenceRule()])
        messages = [f.message for f in report.active]
        assert any("bogus_flag" in m and "no such argument" in m
                   for m in messages)
        assert any("no_such_field" in m for m in messages)

    def test_catches_unprobed_fingerprint_exclusion(self, monkeypatch):
        import repro.results.store as store_mod

        monkeypatch.setattr(store_mod, "FINGERPRINT_EXCLUDED_FIELDS",
                            store_mod.FINGERPRINT_EXCLUDED_FIELDS
                            + ("not_a_field",))
        report = run_lint(SRC_REPRO, rules=[RegistrySpecCoherenceRule()])
        assert any("not_a_field" in f.message for f in report.active)


# --------------------------------------------------------------------- #
# RPR004 event-kind exhaustiveness
# --------------------------------------------------------------------- #
class TestEventKindExhaustivenessRule:
    def test_catches_undeclared_kinds_in_every_emission_shape(self, tmp_path):
        files = {
            "repro/core/emit.py": """\
                from repro.results.events import Event

                def emit(log, stream):
                    Event("totally_bogus_kind", outer=1)
                    log.record("another_bogus_kind")
                    _stream_line({"kind": "stream_bogus_kind"})
                """,
        }
        report = lint_fixture(tmp_path, files, EventKindExhaustivenessRule)
        kinds = {f.message.split("'")[1] for f in report.active}
        assert kinds == {"totally_bogus_kind", "another_bogus_kind",
                         "stream_bogus_kind"}

    def test_declared_kinds_are_clean(self, tmp_path):
        files = {
            "repro/core/emit.py": """\
                from repro.results.events import Event

                def emit(log):
                    Event("fault_injected", outer=1)
                    Event(kind="trial_completed")
                    log.record("happy_breakdown")
                """,
        }
        report = lint_fixture(tmp_path, files, EventKindExhaustivenessRule)
        assert report.findings == []

    def test_reverse_check_only_when_events_module_present(self, tmp_path):
        # No repro/results/events.py in the tree: no never-emitted warnings.
        files = {"repro/core/quiet.py": "x = 1\n"}
        report = lint_fixture(tmp_path, files, EventKindExhaustivenessRule)
        assert report.findings == []
        # With the module present and nothing emitted, every declared kind
        # is reported as never-emitted — at warning severity (exit 0).
        files["repro/results/events.py"] = "EVENT_KINDS = frozenset()\n"
        report = lint_fixture(tmp_path, files, EventKindExhaustivenessRule)
        assert report.findings and not report.active
        assert all(f.severity == "warning" and "never emitted" in f.message
                   for f in report.findings)

    def test_clean_on_real_tree(self):
        report = run_lint(SRC_REPRO, rules=[EventKindExhaustivenessRule()])
        assert report.active == [], "\n".join(
            f.render() for f in report.active)
        # The declared<->emitted tables agree in both directions.
        assert not [f for f in report.findings if f.severity == "warning"]


# --------------------------------------------------------------------- #
# RPR005 fork/lock safety
# --------------------------------------------------------------------- #
class TestForkLockSafetyRule:
    def test_catches_raw_os_fork(self, tmp_path):
        files = {
            "repro/exec/spawner.py": """\
                import os

                def spawn():
                    return os.fork()
                """,
        }
        report = lint_fixture(tmp_path, files, ForkLockSafetyRule)
        assert len(report.active) == 1
        assert "os.fork" in report.active[0].message

    def test_catches_thread_in_forking_module(self, tmp_path):
        files = {
            "repro/service/mixed.py": """\
                import multiprocessing
                import threading

                def run(job):
                    ctx = multiprocessing.get_context("fork")
                    watcher = threading.Thread(target=print, daemon=True)
                    watcher.start()
                    return ctx.Process(target=job)
                """,
        }
        report = lint_fixture(tmp_path, files, ForkLockSafetyRule)
        assert len(report.active) == 1
        assert "forks" in report.active[0].message

    def test_thread_without_fork_is_clean(self, tmp_path):
        files = {
            "repro/service/threads.py": """\
                import threading

                def watch():
                    return threading.Thread(target=print, daemon=True)
                """,
        }
        report = lint_fixture(tmp_path, files, ForkLockSafetyRule)
        assert report.findings == []

    def test_catches_unpaired_flock(self, tmp_path):
        files = {
            "repro/results/store.py": """\
                import fcntl

                def hold(handle):
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                """,
        }
        report = lint_fixture(tmp_path, files, ForkLockSafetyRule)
        assert len(report.active) == 1
        assert "LOCK_UN" in report.active[0].message

    def test_paired_flock_is_clean(self, tmp_path):
        files = {
            "repro/results/store.py": """\
                import fcntl

                def hold(handle):
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)

                def release(handle):
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
                """,
        }
        report = lint_fixture(tmp_path, files, ForkLockSafetyRule)
        assert report.findings == []

    def test_out_of_scope_module_not_checked(self, tmp_path):
        files = {
            "repro/core/forky.py": """\
                import os

                def spawn():
                    return os.fork()
                """,
        }
        report = lint_fixture(tmp_path, files, ForkLockSafetyRule)
        assert report.findings == []


# --------------------------------------------------------------------- #
# CLI: exit codes, formats, baseline workflow
# --------------------------------------------------------------------- #
class TestCli:
    def test_exit_two_on_missing_target(self, tmp_path, capsys):
        assert lint_main([str(tmp_path / "nope")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_exit_two_on_unknown_rule(self, tmp_path, capsys):
        assert lint_main([str(tmp_path), "--rules", "RPR999"]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_exit_one_on_violation_zero_when_clean(self, tmp_path, capsys):
        target = write_tree(tmp_path, TestFramework.VIOLATION)
        assert lint_main([target, "--no-baseline"]) == 1
        clean = tmp_path / "clean" / "repro"
        clean.mkdir(parents=True)
        (clean / "ok.py").write_text("x = 1\n")
        capsys.readouterr()
        assert lint_main([str(clean), "--no-baseline"]) == 0

    def test_json_format_is_parseable(self, tmp_path, capsys):
        target = write_tree(tmp_path, TestFramework.VIOLATION)
        code = lint_main([target, "--format", "json", "--no-baseline"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["summary"]["active"] >= 1

    def test_write_then_use_baseline(self, tmp_path, capsys):
        target = write_tree(tmp_path, TestFramework.VIOLATION)
        baseline = str(tmp_path / "baseline.json")
        assert lint_main([target, "--write-baseline", baseline]) == 0
        assert lint_main([target, "--baseline", baseline]) == 0
        out = capsys.readouterr().out
        assert "[baselined]" in out

    def test_rules_filter_scopes_the_run(self, tmp_path):
        target = write_tree(tmp_path, TestFramework.VIOLATION)
        assert lint_main([target, "--rules", "RPR002",
                          "--no-baseline"]) == 0

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RPR001", "RPR002", "RPR003", "RPR004", "RPR005"):
            assert rule_id in out

    def test_repro_cli_dispatches_lint(self, capsys):
        from repro.experiments.runner import main

        assert main(["lint", "--list-rules"]) == 0
        assert "RPR001" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# self-hosting acceptance gate
# --------------------------------------------------------------------- #
class TestSelfHosting:
    def test_repro_source_tree_has_zero_active_findings(self):
        baseline = os.path.join(REPO_ROOT, "lint-baseline.json")
        report = run_lint(
            SRC_REPRO,
            baseline=baseline if os.path.isfile(baseline) else None)
        assert report.active == [], "\n".join(
            f.render() for f in report.active)
        assert report.files_scanned > 50

    def test_suppressions_are_visible_not_silent(self):
        # The supervisor's two legitimate wall-clock reads stay reported.
        report = run_lint(SRC_REPRO)
        supervisor = [f for f in report.suppressed
                      if f.file == "repro/exec/supervisor.py"
                      and f.rule == "RPR002"]
        assert len(supervisor) == 2


# --------------------------------------------------------------------- #
# regression: concurrent manifest RMW keeps every key (the RPR001 fix)
# --------------------------------------------------------------------- #
class TestManifestLockRegression:
    def _manifest(self, run_id="r1", total=4):
        return RunManifest(
            run_id=run_id, spec={"stride": 1}, spec_hash="abc",
            problem_name="p", repro_version="1", seed=7,
            mgs_position="first", inner_iterations=5,
            detector_enabled=False, failure_free_outer=3,
            failure_free_residual=1e-9, locations=[0],
            fault_classes=["large"], total_trials=total)

    def test_concurrent_update_manifest_extra_loses_no_keys(self, tmp_path):
        store = RunStore(tmp_path)
        store.create_run(self._manifest()).close()
        errors = []

        def update(i):
            try:
                store.update_manifest_extra("r1", **{f"key_{i}": i})
            except Exception as exc:  # noqa: BLE001 - surfaced via assert
                errors.append(exc)

        threads = [threading.Thread(target=update, args=(i,))
                   for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        extra = store.manifest("r1").extra
        assert {f"key_{i}" for i in range(16)} <= set(extra)
        assert all(extra[f"key_{i}"] == i for i in range(16))
