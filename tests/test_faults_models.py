"""Unit tests for fault models and bit-flip helpers."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.faults.bitflip import (
    EXPONENT_BITS,
    MANTISSA_BITS,
    SIGN_BIT,
    flip_bit,
    flip_bit_in_array,
    random_bit_flip,
)
from repro.faults.models import (
    AbsoluteFault,
    AdditiveFault,
    BitFlipFault,
    InfFault,
    NaNFault,
    PAPER_FAULT_CLASSES,
    ScalingFault,
    ZeroFault,
)


class TestBitFlip:
    def test_sign_bit(self):
        assert flip_bit(3.5, SIGN_BIT) == -3.5
        assert flip_bit(-3.5, SIGN_BIT) == 3.5

    def test_involution(self):
        value = 0.123456789
        for bit in (0, 17, 42, 52, 60, 63):
            assert flip_bit(flip_bit(value, bit), bit) == value

    def test_mantissa_flip_small_change(self):
        value = 1.0
        flipped = flip_bit(value, 0)
        assert flipped != value
        assert abs(flipped - value) < 1e-15

    def test_exponent_flip_large_change(self):
        value = 1.0
        flipped = flip_bit(value, 62)  # highest exponent bit
        assert not math.isclose(flipped, value) and (flipped > 1e100 or flipped < 1e-100
                                                     or not np.isfinite(flipped))

    def test_bit_range_validated(self):
        with pytest.raises(ValueError):
            flip_bit(1.0, 64)
        with pytest.raises(ValueError):
            flip_bit(1.0, -1)

    def test_flip_in_array_inplace(self):
        arr = np.array([1.0, 2.0, 3.0])
        flip_bit_in_array(arr, 1, SIGN_BIT)
        np.testing.assert_array_equal(arr, [1.0, -2.0, 3.0])

    def test_flip_in_array_validation(self):
        arr = np.array([1.0, 2.0])
        with pytest.raises(IndexError):
            flip_bit_in_array(arr, 5, 0)
        with pytest.raises(TypeError):
            flip_bit_in_array(np.array([1, 2], dtype=np.int64), 0, 0)

    def test_random_bit_flip_deterministic_with_seed(self):
        v1, b1 = random_bit_flip(2.5, rng=7)
        v2, b2 = random_bit_flip(2.5, rng=7)
        assert v1 == v2 and b1 == b2

    def test_random_bit_flip_restricted_bits(self):
        _, bit = random_bit_flip(2.5, rng=3, bits=EXPONENT_BITS)
        assert bit in EXPONENT_BITS

    def test_bit_partition(self):
        assert len(MANTISSA_BITS) + len(EXPONENT_BITS) + 1 == 64


class TestScalingFault:
    def test_basic(self):
        assert ScalingFault(2.0).corrupt(3.0) == 6.0

    def test_overflow_to_inf_not_error(self):
        corrupted = ScalingFault(1e200).corrupt(1e200)
        assert np.isinf(corrupted)

    def test_underflow_to_zero(self):
        assert ScalingFault(1e-300).corrupt(1e-300) == 0.0

    def test_paper_classes(self):
        assert set(PAPER_FAULT_CLASSES) == {"large", "slightly_smaller", "near_zero"}
        h = 2.0
        assert PAPER_FAULT_CLASSES["large"].corrupt(h) == h * 1e150
        assert PAPER_FAULT_CLASSES["slightly_smaller"].corrupt(h) == pytest.approx(
            h * 10 ** -0.5)
        assert PAPER_FAULT_CLASSES["near_zero"].corrupt(h) == h * 1e-300

    def test_describe(self):
        assert "1e+150" in ScalingFault(1e150).describe() or "1e150" in ScalingFault(
            1e150).describe()


class TestOtherModels:
    def test_absolute(self):
        assert AbsoluteFault(7.5).corrupt(123.0) == 7.5

    def test_additive(self):
        assert AdditiveFault(-2.0).corrupt(5.0) == 3.0

    def test_zero(self):
        assert ZeroFault().corrupt(99.0) == 0.0

    def test_nan_inf(self):
        assert math.isnan(NaNFault().corrupt(1.0))
        assert math.isinf(InfFault().corrupt(1.0))

    def test_bitflip_fixed_bit(self):
        model = BitFlipFault(bit=SIGN_BIT)
        assert model.corrupt(4.0) == -4.0
        assert model.last_bit == SIGN_BIT

    def test_bitflip_random_bit_seeded(self):
        a = BitFlipFault(rng=11)
        b = BitFlipFault(rng=11)
        assert a.corrupt(3.14) == b.corrupt(3.14)
        assert a.last_bit == b.last_bit

    def test_bitflip_bit_validated(self):
        with pytest.raises(ValueError):
            BitFlipFault(bit=99)

    def test_describe_strings(self):
        for model in (AbsoluteFault(1.0), AdditiveFault(1.0), ZeroFault(), NaNFault(),
                      InfFault(), BitFlipFault(bit=3)):
            assert isinstance(model.describe(), str) and model.describe()


class TestCorruptVector:
    def test_specific_index(self):
        model = ScalingFault(10.0)
        vec = np.array([1.0, 2.0, 3.0])
        out = model.corrupt_vector(vec, index=1)
        np.testing.assert_array_equal(out, [1.0, 20.0, 3.0])
        np.testing.assert_array_equal(vec, [1.0, 2.0, 3.0])  # original untouched

    def test_random_index_seeded(self):
        model = ScalingFault(10.0)
        vec = np.arange(1.0, 11.0)
        out1 = model.corrupt_vector(vec, rng=5)
        out2 = model.corrupt_vector(vec, rng=5)
        np.testing.assert_array_equal(out1, out2)
        assert np.count_nonzero(out1 != vec) == 1

    def test_index_validated(self):
        with pytest.raises(IndexError):
            ScalingFault(2.0).corrupt_vector(np.ones(3), index=7)

    def test_empty_vector(self):
        out = ScalingFault(2.0).corrupt_vector(np.array([]))
        assert out.size == 0
