"""Tests for the Householder-reflector Arnoldi variant.

The key claim (paper, Section V-B): the Hessenberg-entry bound is invariant
of the orthogonalization algorithm, so the same detector applies whether the
implementation uses Modified Gram–Schmidt, Classical Gram–Schmidt, or
Householder reflections.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.arnoldi import arnoldi_process
from repro.core.householder import householder_arnoldi
from repro.sparse.norms import frobenius_norm, two_norm_estimate


class TestFactorization:
    def test_arnoldi_relation(self, rng, poisson_small):
        v0 = rng.standard_normal(poisson_small.shape[0])
        Q, H, breakdown = householder_arnoldi(poisson_small, v0, 10)
        assert not breakdown
        AQ = np.column_stack([poisson_small.matvec(Q[:, j]) for j in range(H.shape[1])])
        np.testing.assert_allclose(AQ, Q @ H, rtol=1e-10, atol=1e-10)

    def test_basis_orthonormal(self, rng, nonsym_small):
        v0 = rng.standard_normal(nonsym_small.shape[0])
        Q, H, _ = householder_arnoldi(nonsym_small, v0, 12)
        np.testing.assert_allclose(Q.T @ Q, np.eye(Q.shape[1]), atol=1e-12)

    def test_first_vector_spans_v0(self, rng, poisson_small):
        v0 = rng.standard_normal(poisson_small.shape[0])
        Q, _, _ = householder_arnoldi(poisson_small, v0, 4)
        cosine = abs(np.dot(Q[:, 0], v0) / np.linalg.norm(v0))
        assert cosine == pytest.approx(1.0, rel=1e-12)

    def test_spd_structure_tridiagonal(self, rng, poisson_small):
        v0 = rng.standard_normal(poisson_small.shape[0])
        _, H, _ = householder_arnoldi(poisson_small, v0, 8)
        assert np.abs(np.triu(H[:8, :8], 2)).max() < 1e-10

    def test_breakdown_on_invariant_subspace(self):
        A = np.diag([1.0, 2.0, 3.0])
        Q, H, breakdown = householder_arnoldi(A, np.array([1.0, 0.0, 0.0]), 3)
        assert breakdown
        assert H.shape[1] == 1
        assert abs(H[1, 0]) < 1e-12

    def test_m_capped_at_n(self, rng):
        A = np.eye(5) + np.diag(np.ones(4), 1)
        Q, H, _ = householder_arnoldi(A, rng.standard_normal(5), 20)
        assert H.shape[1] <= 5

    def test_input_validation(self, poisson_small, rng):
        with pytest.raises(ValueError, match="nonzero"):
            householder_arnoldi(poisson_small, np.zeros(poisson_small.shape[0]), 3)
        with pytest.raises(ValueError, match="length"):
            householder_arnoldi(poisson_small, np.ones(3), 3)
        with pytest.raises(ValueError, match="positive"):
            householder_arnoldi(poisson_small, rng.standard_normal(poisson_small.shape[0]), 0)


class TestBoundInvariance:
    """The paper's claim: the bound holds for every orthogonalization variant."""

    @pytest.mark.parametrize("fixture_name", ["poisson_small", "nonsym_small",
                                              "diag_dom_small"])
    def test_bound_holds(self, request, rng, fixture_name):
        A = request.getfixturevalue(fixture_name)
        v0 = rng.standard_normal(A.shape[0])
        _, H, _ = householder_arnoldi(A, v0, 12)
        assert np.abs(H).max() <= frobenius_norm(A) + 1e-10
        assert np.abs(H).max() <= two_norm_estimate(A, tol=1e-10, maxiter=500) * (1 + 1e-6)

    def test_same_ritz_values_as_mgs(self, rng, poisson_small):
        """Householder and MGS build the same Krylov space, so the square
        Hessenberg blocks share their eigenvalues (Ritz values)."""
        v0 = rng.standard_normal(poisson_small.shape[0])
        _, H_hh, _ = householder_arnoldi(poisson_small, v0, 10)
        _, H_mgs, _ = arnoldi_process(poisson_small, v0, 10)
        ritz_hh = np.sort(np.linalg.eigvals(H_hh[:10, :10]).real)
        ritz_mgs = np.sort(np.linalg.eigvals(H_mgs[:10, :10]).real)
        np.testing.assert_allclose(ritz_hh, ritz_mgs, rtol=1e-8, atol=1e-8)
