"""Unit tests for fault campaigns (the Figure 3/4 sweep engine)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.campaign import FaultCampaign, sweep_injection_locations
from repro.faults.models import ScalingFault
from repro.gallery.problems import poisson_problem


@pytest.fixture(scope="module")
def tiny_problem():
    """A very small Poisson problem shared by the campaign tests."""
    return poisson_problem(grid_n=8)  # 64 unknowns


@pytest.fixture(scope="module")
def tiny_campaign_result(tiny_problem):
    """One campaign run shared by several read-only assertions."""
    campaign = FaultCampaign(tiny_problem, inner_iterations=6, max_outer=30,
                             fault_classes={"large": ScalingFault(1e150),
                                            "near_zero": ScalingFault(1e-300)},
                             mgs_position="first", detector=None)
    return campaign.run(stride=5)


class TestCampaignConfig:
    def test_invalid_mgs_position(self, tiny_problem):
        with pytest.raises(ValueError):
            FaultCampaign(tiny_problem, mgs_position="middle")

    def test_invalid_detector(self, tiny_problem):
        with pytest.raises(ValueError):
            FaultCampaign(tiny_problem, detector="magic")

    def test_invalid_stride(self, tiny_problem):
        campaign = FaultCampaign(tiny_problem, inner_iterations=4, max_outer=20)
        with pytest.raises(ValueError):
            campaign.run(stride=0)

    def test_bound_detector_resolved(self, tiny_problem):
        from repro.core.detectors import HessenbergBoundDetector

        campaign = FaultCampaign(tiny_problem, detector="bound")
        assert isinstance(campaign.detector, HessenbergBoundDetector)

    def test_default_fault_classes_are_papers(self, tiny_problem):
        campaign = FaultCampaign(tiny_problem)
        assert set(campaign.fault_classes) == {"large", "slightly_smaller", "near_zero"}


class TestFailureFreeBaseline:
    def test_baseline_converges(self, tiny_problem):
        campaign = FaultCampaign(tiny_problem, inner_iterations=6, max_outer=30)
        baseline = campaign.run_failure_free()
        assert baseline.converged
        assert baseline.outer_iterations > 0


class TestSingleTrial:
    def test_single_trial_record(self, tiny_problem):
        campaign = FaultCampaign(tiny_problem, inner_iterations=6, max_outer=30,
                                 mgs_position="last", detector=None)
        trial = campaign.run_single("large", ScalingFault(1e150), 3)
        assert trial.fault_class == "large"
        assert trial.aggregate_inner_iteration == 3
        assert trial.mgs_position == "last"
        assert trial.faults_injected == 1
        assert trial.converged
        assert not trial.detector_enabled

    def test_detector_enabled_trial(self, tiny_problem):
        campaign = FaultCampaign(tiny_problem, inner_iterations=6, max_outer=30,
                                 detector="bound", detector_response="zero")
        trial = campaign.run_single("large", ScalingFault(1e150), 2)
        assert trial.detector_enabled
        assert trial.faults_detected >= 1


class TestCampaignRun:
    def test_trial_counts(self, tiny_campaign_result):
        res = tiny_campaign_result
        expected_locations = len(range(0, res.failure_free_outer * res.inner_iterations, 5))
        assert len(res.trials) == 2 * expected_locations

    def test_every_trial_injected_exactly_one_fault(self, tiny_campaign_result):
        assert all(t.faults_injected == 1 for t in tiny_campaign_result.trials)

    def test_series_sorted_and_complete(self, tiny_campaign_result):
        x, y = tiny_campaign_result.series("large")
        assert np.all(np.diff(x) > 0)
        assert x.size == y.size > 0

    def test_series_empty_for_unknown_class(self, tiny_campaign_result):
        x, y = tiny_campaign_result.series("not_a_class")
        assert x.size == 0 and y.size == 0

    def test_fault_classes_listed(self, tiny_campaign_result):
        assert tiny_campaign_result.fault_classes() == ["large", "near_zero"]

    def test_summary_statistics_consistent(self, tiny_campaign_result):
        res = tiny_campaign_result
        summary = res.summary()
        for cls in res.fault_classes():
            assert summary[cls]["max_outer"] >= res.failure_free_outer
            assert summary[cls]["max_increase"] == summary[cls]["max_outer"] - res.failure_free_outer
            assert 0.0 <= summary[cls]["detection_rate"] <= 1.0

    def test_explicit_locations(self, tiny_problem):
        campaign = FaultCampaign(tiny_problem, inner_iterations=6, max_outer=30,
                                 fault_classes={"large": ScalingFault(1e150)})
        res = campaign.run(locations=[0, 4, 9])
        assert sorted({t.aggregate_inner_iteration for t in res.trials}) == [0, 4, 9]

    def test_progress_callback(self, tiny_problem):
        campaign = FaultCampaign(tiny_problem, inner_iterations=6, max_outer=30,
                                 fault_classes={"large": ScalingFault(1e150)})
        calls = []
        campaign.run(locations=[0, 5], progress=lambda done, total: calls.append((done, total)))
        assert calls == [(1, 2), (2, 2)]

    def test_functional_wrapper(self, tiny_problem):
        res = sweep_injection_locations(tiny_problem, inner_iterations=6, max_outer=30,
                                        fault_classes={"large": ScalingFault(1e150)},
                                        locations=[0, 3])
        assert len(res.trials) == 2
        assert res.problem_name == tiny_problem.name

    def test_non_converged_listing(self, tiny_campaign_result):
        # All tiny-problem trials should converge within the generous budget.
        assert tiny_campaign_result.non_converged() == []
