"""Crash/resume determinism of the persistent run store.

The contract under test (the PR's acceptance criterion): a campaign
interrupted at *any* trial boundary and resumed via
``run_campaign(..., store=..., resume=True)`` yields a ``CampaignResult``
trial-identical to an uninterrupted run, on all four execution backends —
exactly for serial/thread/process, and per the batched engine's documented
1e-10 residual contract (a resumed batched run re-batches the remaining
trials, so reduction orders may legally differ at that level).  Includes the
corrupted-last-line JSONL recovery case and the zero-solve regeneration of
figure data from a stored run.
"""

from __future__ import annotations

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.api import run_campaign
from repro.experiments import runner as runner_mod
from repro.faults.campaign import FaultCampaign
from repro.gallery.problems import poisson_problem
from repro.results.store import RunStore, RunStoreError
from repro.specs import CampaignSpec


#: Small but non-trivial campaign: 3 fault classes x 4 locations = 12 trials.
SPEC = dict(inner_iterations=5, max_outer=25, locations=[0, 2, 5, 9])

#: Execution-backend grid (knobs per backend, as the executor demands).
BACKENDS = [
    ("serial", {}),
    ("thread", {"workers": 2}),
    ("process", {"workers": 2, "chunksize": 1}),
    ("batched", {"batch_size": 3}),
]


@pytest.fixture(scope="module")
def problem():
    return poisson_problem(8)


@pytest.fixture(scope="module")
def reference(problem):
    """The uninterrupted serial reference result."""
    return run_campaign(problem, dict(SPEC))


class _InterruptAfter(Exception):
    pass


class _Bomb:
    """A sink that raises after n trial_completed events (mid-campaign kill)."""

    def __init__(self, n: int):
        self.n = n

    def __call__(self, event):
        if event.kind == "trial_completed" and event.data["done"] >= self.n:
            raise _InterruptAfter


def _spec_with(backend, knobs) -> dict:
    spec = dict(SPEC)
    if backend != "serial" or knobs:
        spec["exec"] = {"backend": backend, **knobs}
    return spec


def assert_trials_match(got, want, *, batched: bool):
    """Trial-identity, with the batched engine's 1e-10 residual contract."""
    assert len(got.trials) == len(want.trials)
    assert got.failure_free_outer == want.failure_free_outer
    assert got.failure_free_residual == want.failure_free_residual
    if not batched:
        assert got.trials == want.trials
        return
    for g, w in zip(got.trials, want.trials):
        assert dataclasses.replace(g, residual_norm=0.0) == \
            dataclasses.replace(w, residual_norm=0.0)
        if np.isnan(w.residual_norm):
            assert np.isnan(g.residual_norm)
        else:
            assert abs(g.residual_norm - w.residual_norm) <= \
                1e-10 * max(1.0, abs(w.residual_norm))


# ====================================================================== #
# the headline guarantee
# ====================================================================== #
class TestCrashResumeDeterminism:
    @pytest.mark.parametrize("backend,knobs", BACKENDS)
    @pytest.mark.parametrize("kill_after", [1, 5, 11])
    def test_interrupt_resume_is_trial_identical(self, problem, reference,
                                                 tmp_path, backend, knobs,
                                                 kill_after):
        store = RunStore(tmp_path)
        spec = _spec_with(backend, knobs)
        with pytest.raises(_InterruptAfter):
            run_campaign(problem, dict(spec), store=store, run_id="r",
                         sink=_Bomb(kill_after))
        persisted = store.completed_indices("r")
        # at least the observed trials are on disk; the pool/batched
        # backends may have persisted more (writes precede observation)
        assert len(persisted) >= kill_after
        assert store.manifest("r").status == "running"

        resumed = run_campaign(problem, dict(spec), store=store, run_id="r",
                               resume=True)
        assert_trials_match(resumed, reference, batched=(backend == "batched"))
        assert store.manifest("r").status == "complete"
        # the merged run is fully persisted and loads back identically
        loaded = store.load_result("r")
        assert loaded.trials == resumed.trials

    @pytest.mark.parametrize("backend,knobs", BACKENDS)
    def test_uninterrupted_stored_run_matches_unstored(self, problem,
                                                       reference, tmp_path,
                                                       backend, knobs):
        """Persisting a run does not perturb it."""
        store = RunStore(tmp_path)
        result = run_campaign(problem, _spec_with(backend, knobs), store=store)
        assert_trials_match(result, reference, batched=(backend == "batched"))
        run_id = store.run_ids()[0]
        assert store.load_result(run_id).trials == result.trials

    def test_resume_after_torn_tail(self, problem, reference, tmp_path):
        """Crash mid-append: the torn JSONL line is dropped and re-run."""
        store = RunStore(tmp_path)
        with pytest.raises(_InterruptAfter):
            run_campaign(problem, dict(SPEC), store=store, run_id="r",
                         sink=_Bomb(4))
        trials_path = os.path.join(store.run_path("r"), "trials.jsonl")
        with open(trials_path, "a", encoding="utf-8") as handle:
            handle.write('{"index": 4, "fault_class": "larg')  # torn write
        before = len(store.read_trials("r")[0])
        resumed = run_campaign(problem, dict(SPEC), store=store, run_id="r",
                               resume=True)
        assert resumed.trials == reference.trials
        pairs, torn = store.read_trials("r")
        assert not torn and len(pairs) == len(reference.trials) >= before

    def test_resume_of_complete_run_solves_nothing(self, problem, reference,
                                                   tmp_path, monkeypatch):
        store = RunStore(tmp_path)
        run_campaign(problem, dict(SPEC), store=store, run_id="r")

        def forbidden(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("resume of a complete run must not solve")

        monkeypatch.setattr(FaultCampaign, "run_failure_free", forbidden)
        monkeypatch.setattr(FaultCampaign, "run_single", forbidden)
        resumed = run_campaign(problem, dict(SPEC), store=store, run_id="r",
                               resume=True)
        assert resumed.trials == reference.trials

    def test_execution_knobs_do_not_change_run_identity(self, problem,
                                                        reference, tmp_path):
        """A sweep run in parallel and resumed serially shares one store
        entry: backend/worker knobs are excluded from the fingerprint."""
        store = RunStore(tmp_path)
        with pytest.raises(_InterruptAfter):
            run_campaign(problem, _spec_with("thread", {"workers": 2}),
                         store=store, sink=_Bomb(2))
        run_ids = store.run_ids()
        assert len(run_ids) == 1
        # resume with a *different* backend and no explicit run_id: the
        # default id must land on the same run and complete it
        resumed = run_campaign(problem, dict(SPEC), store=store, resume=True)
        assert store.run_ids() == run_ids
        assert resumed.trials == reference.trials

    def test_resume_rejects_a_different_spec(self, problem, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(_InterruptAfter):
            run_campaign(problem, dict(SPEC), store=store, run_id="r",
                         sink=_Bomb(1))
        changed = dict(SPEC, inner_iterations=6)
        with pytest.raises(RunStoreError, match="different campaign"):
            run_campaign(problem, changed, store=store, run_id="r", resume=True)

    def test_existing_run_without_resume_is_refused(self, problem, tmp_path):
        store = RunStore(tmp_path)
        run_campaign(problem, dict(SPEC), store=store, run_id="r")
        with pytest.raises(RunStoreError, match="resume=True"):
            run_campaign(problem, dict(SPEC), store=store, run_id="r")

    def test_resume_without_existing_run_starts_fresh(self, problem,
                                                      reference, tmp_path):
        store = RunStore(tmp_path)
        result = run_campaign(problem, dict(SPEC), store=store, run_id="r",
                              resume=True)
        assert result.trials == reference.trials

    def test_store_flags_require_store(self, problem):
        with pytest.raises(RunStoreError, match="require store"):
            run_campaign(problem, dict(SPEC), resume=True)


# ====================================================================== #
# zero-solve figure regeneration through the runner CLI
# ====================================================================== #
class TestRunnerStoreIntegration:
    ARGS = ["fig3", "--scale", "tiny", "--stride", "25"]

    def test_fig3_regenerates_from_store_with_zero_solves(self, tmp_path,
                                                          capsys, monkeypatch):
        store_args = ["--store", str(tmp_path)]
        assert runner_mod.main(self.ARGS + store_args) == 0
        live = capsys.readouterr().out

        # zero new solves: forbid the solver layer entirely
        def forbidden(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("--from-store must not solve")

        monkeypatch.setattr(FaultCampaign, "run_failure_free", forbidden)
        monkeypatch.setattr(FaultCampaign, "run_single", forbidden)
        monkeypatch.setattr(FaultCampaign, "iter_specs_batched", forbidden)
        assert runner_mod.main(self.ARGS + store_args + ["--from-store"]) == 0
        regenerated = capsys.readouterr().out
        assert regenerated == live

    def test_from_store_names_the_missing_run(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            runner_mod.main(self.ARGS + ["--store", str(tmp_path),
                                         "--from-store"])
        assert exc.value.code == 2
        assert "no run" in capsys.readouterr().err

    def test_runner_resume_completes_an_interrupted_store(self, tmp_path,
                                                          capsys):
        """Simulate the CI resume-smoke flow in-process: run, truncate the
        store to an interrupted state, resume, and diff the reports."""
        store_args = ["--store", str(tmp_path)]
        assert runner_mod.main(self.ARGS + store_args) == 0
        live = capsys.readouterr().out

        store = RunStore(tmp_path)
        run_id = store.run_ids()[0]
        manifest_status = store.manifest(run_id).status
        assert manifest_status == "complete"
        # rewind the run to "interrupted": drop trials, mark it running
        trials_path = os.path.join(store.run_path(run_id), "trials.jsonl")
        lines = open(trials_path).read().splitlines(keepends=True)
        with open(trials_path, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:1])
        manifest = store.manifest(run_id)
        manifest.status = "running"
        store._write_manifest(manifest)

        assert runner_mod.main(self.ARGS + store_args + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert resumed == live
        assert store.manifest(run_id).status == "complete"

    def test_events_jsonl_sink_from_cli(self, tmp_path, capsys):
        events_dir = str(tmp_path / "events") + os.sep
        assert runner_mod.main(self.ARGS + ["--sink", f"jsonl:{events_dir}"]) == 0
        capsys.readouterr()
        lines = open(os.path.join(events_dir, "events.jsonl")).read().splitlines()
        kinds = {json.loads(line)["kind"] for line in lines}
        assert {"campaign_started", "baseline_completed", "trial_completed",
                "campaign_completed"} <= kinds
