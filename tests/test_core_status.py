"""Unit tests for solver status, results, and convergence histories."""

from __future__ import annotations

import numpy as np

from repro.core.status import (
    ConvergenceHistory,
    NestedSolverResult,
    SolverResult,
    SolverStatus,
)
from repro.utils.events import EventLog


class TestSolverStatus:
    def test_success_classification(self):
        assert SolverStatus.CONVERGED.is_success
        assert SolverStatus.HAPPY_BREAKDOWN.is_success
        assert SolverStatus.MAX_ITERATIONS.is_success
        assert not SolverStatus.RANK_DEFICIENT.is_success
        assert not SolverStatus.FAULT_DETECTED.is_success

    def test_loud_failure_classification(self):
        assert SolverStatus.RANK_DEFICIENT.is_loud_failure
        assert SolverStatus.FAULT_DETECTED.is_loud_failure
        assert not SolverStatus.CONVERGED.is_loud_failure
        assert not SolverStatus.MAX_ITERATIONS.is_loud_failure


class TestConvergenceHistory:
    def test_append_and_access(self):
        h = ConvergenceHistory()
        for v in (4.0, 2.0, 1.0):
            h.append(v)
        assert len(h) == 3
        assert h.initial == 4.0
        assert h.final == 1.0
        assert h[1] == 2.0
        np.testing.assert_array_equal(h.as_array(), [4.0, 2.0, 1.0])

    def test_empty_history(self):
        h = ConvergenceHistory()
        assert np.isnan(h.initial)
        assert np.isnan(h.final)
        assert h.is_monotone_nonincreasing()

    def test_monotonicity_check(self):
        h = ConvergenceHistory()
        for v in (8.0, 4.0, 4.0, 1.0):
            h.append(v)
        assert h.is_monotone_nonincreasing()
        h.append(2.0)
        assert not h.is_monotone_nonincreasing()

    def test_monotonicity_tolerance(self):
        h = ConvergenceHistory()
        h.append(1.0)
        h.append(1.0 + 1e-14)
        assert h.is_monotone_nonincreasing(rtol=1e-12)


class TestSolverResult:
    def _result(self, status):
        return SolverResult(x=np.zeros(3), status=status, iterations=5, residual_norm=1e-9)

    def test_converged_property(self):
        assert self._result(SolverStatus.CONVERGED).converged
        assert self._result(SolverStatus.HAPPY_BREAKDOWN).converged
        assert not self._result(SolverStatus.MAX_ITERATIONS).converged

    def test_default_containers(self):
        r = self._result(SolverStatus.CONVERGED)
        assert len(r.history) == 0
        assert len(r.events) == 0
        assert r.matvecs == 0


class TestNestedSolverResult:
    def _nested(self):
        events = EventLog()
        events.record("fault_injected", where="hessenberg")
        events.record("fault_detected", where="hessenberg")
        events.record("fault_detected", where="hessenberg")
        return NestedSolverResult(
            x=np.zeros(4), status=SolverStatus.CONVERGED, outer_iterations=9,
            total_inner_iterations=225, residual_norm=1e-10, events=events)

    def test_fault_counters(self):
        r = self._nested()
        assert r.faults_injected == 1
        assert r.faults_detected == 2

    def test_converged(self):
        r = self._nested()
        assert r.converged
        r.status = SolverStatus.RANK_DEFICIENT
        assert not r.converged

    def test_inner_results_default(self):
        assert self._nested().inner_results == []
