"""Unit and integration tests for the GMRES solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.scipy_wrappers import scipy_gmres
from repro.core.detectors import HessenbergBoundDetector
from repro.core.exceptions import FaultDetectedError
from repro.core.gmres import GMRESParameters, gmres
from repro.core.status import SolverStatus
from repro.faults.injector import FaultInjector
from repro.faults.models import ScalingFault
from repro.faults.schedule import InjectionSchedule
from repro.precond.jacobi import JacobiPreconditioner
from repro.sparse.norms import frobenius_norm


class TestBasicConvergence:
    def test_dense_system(self, small_dense, rng):
        b = rng.standard_normal(12)
        result = gmres(small_dense, b, tol=1e-12, maxiter=50)
        assert result.converged
        np.testing.assert_allclose(small_dense @ result.x, b, rtol=1e-8, atol=1e-8)

    def test_poisson(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        result = gmres(poisson_medium, b, tol=1e-10, maxiter=400)
        assert result.status is SolverStatus.CONVERGED
        assert result.residual_norm <= 1e-10 * np.linalg.norm(b) * (1 + 1e-6)

    def test_nonsymmetric(self, nonsym_small, rng):
        b = rng.standard_normal(nonsym_small.shape[0])
        result = gmres(nonsym_small, b, tol=1e-10, maxiter=200)
        assert result.converged
        np.testing.assert_allclose(nonsym_small.matvec(result.x), b, rtol=1e-6, atol=1e-6)

    def test_identity_converges_immediately(self):
        n = 20
        b = np.arange(1.0, n + 1)
        result = gmres(np.eye(n), b, tol=1e-12)
        assert result.converged
        assert result.iterations <= 1
        np.testing.assert_allclose(result.x, b, rtol=1e-12)

    def test_zero_rhs(self, poisson_small):
        result = gmres(poisson_small, np.zeros(poisson_small.shape[0]), tol=1e-10)
        assert result.converged
        assert result.iterations == 0
        np.testing.assert_array_equal(result.x, np.zeros(poisson_small.shape[0]))

    def test_initial_guess_exact(self, poisson_small, rng):
        x_exact = rng.standard_normal(poisson_small.shape[0])
        b = poisson_small.matvec(x_exact)
        result = gmres(poisson_small, b, x0=x_exact, tol=1e-10)
        assert result.converged
        assert result.iterations == 0

    def test_matches_scipy(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        ours = gmres(poisson_medium, b, tol=1e-10, maxiter=500)
        theirs = scipy_gmres(poisson_medium, b, tol=1e-10, maxiter=500, restart=500)
        np.testing.assert_allclose(ours.x, theirs.x, rtol=1e-6, atol=1e-8)

    def test_residual_history_monotone(self, poisson_medium, rng):
        """GMRES's residual estimate is monotonically non-increasing (no faults)."""
        b = rng.standard_normal(poisson_medium.shape[0])
        result = gmres(poisson_medium, b, tol=1e-10, maxiter=300)
        assert result.history.is_monotone_nonincreasing(rtol=1e-10)

    def test_happy_breakdown(self):
        A = np.diag([2.0, 3.0, 4.0])
        b = np.array([1.0, 0.0, 0.0])
        result = gmres(A, b, tol=0.0, maxiter=3)
        assert result.status in (SolverStatus.HAPPY_BREAKDOWN, SolverStatus.CONVERGED)
        np.testing.assert_allclose(result.x, [0.5, 0.0, 0.0], rtol=1e-12)


class TestRestartAndBudget:
    def test_restarted_converges(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        result = gmres(poisson_medium, b, tol=1e-8, maxiter=2000, restart=20)
        assert result.converged

    def test_restarted_no_worse_than_iteration_budget(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.shape[0])
        result = gmres(poisson_small, b, tol=1e-14, maxiter=10, restart=5)
        assert result.iterations <= 10

    def test_fixed_iteration_mode(self, poisson_small, rng):
        """tol=0 forces the full budget — the paper's inner-solve mode."""
        b = rng.standard_normal(poisson_small.shape[0])
        result = gmres(poisson_small, b, tol=0.0, maxiter=7, restart=7)
        assert result.iterations == 7
        assert result.status is SolverStatus.MAX_ITERATIONS

    def test_max_iterations_status(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        result = gmres(poisson_medium, b, tol=1e-14, maxiter=3)
        assert result.status is SolverStatus.MAX_ITERATIONS

    @pytest.mark.parametrize("kwargs", [{"maxiter": 0}, {"restart": 0}])
    def test_invalid_budgets(self, poisson_small, kwargs):
        with pytest.raises(ValueError):
            gmres(poisson_small, np.ones(poisson_small.shape[0]), **kwargs)

    def test_matvec_count(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.shape[0])
        result = gmres(poisson_small, b, tol=0.0, maxiter=5, restart=5)
        # 1 initial residual + 5 Arnoldi steps + 1 final residual
        assert result.matvecs == 7


class TestPreconditioning:
    def test_jacobi_right_preconditioning(self, diag_dom_small, rng):
        b = rng.standard_normal(diag_dom_small.shape[0])
        plain = gmres(diag_dom_small, b, tol=1e-10, maxiter=200)
        pre = gmres(diag_dom_small, b, tol=1e-10, maxiter=200,
                    preconditioner=JacobiPreconditioner(diag_dom_small))
        assert pre.converged
        assert pre.iterations <= plain.iterations
        np.testing.assert_allclose(diag_dom_small.matvec(pre.x), b, rtol=1e-7, atol=1e-8)

    def test_callable_preconditioner(self, diag_dom_small, rng):
        b = rng.standard_normal(diag_dom_small.shape[0])
        inv_diag = 1.0 / diag_dom_small.diagonal()
        pre = gmres(diag_dom_small, b, tol=1e-10, maxiter=200,
                    preconditioner=lambda r: inv_diag * r)
        assert pre.converged

    def test_matrix_preconditioner_shape_validated(self, poisson_small, rng):
        with pytest.raises(ValueError, match="shape"):
            gmres(poisson_small, rng.standard_normal(poisson_small.shape[0]),
                  preconditioner=np.eye(3))


class TestInputValidation:
    def test_rectangular_rejected(self):
        with pytest.raises(ValueError, match="square"):
            gmres(np.ones((3, 4)), np.ones(3))

    def test_rhs_length_rejected(self, poisson_small):
        with pytest.raises(ValueError, match="length"):
            gmres(poisson_small, np.ones(5))

    def test_unknown_detector_string(self, poisson_small):
        with pytest.raises(ValueError):
            gmres(poisson_small, np.ones(poisson_small.shape[0]), detector="magic")

    def test_detector_type_checked(self, poisson_small):
        with pytest.raises(TypeError):
            gmres(poisson_small, np.ones(poisson_small.shape[0]), detector=42)


class TestParametersBundle:
    def test_as_kwargs_roundtrip(self, poisson_small, rng):
        params = GMRESParameters(tol=1e-9, maxiter=50, orthogonalization="cgs2")
        b = rng.standard_normal(poisson_small.shape[0])
        result = gmres(poisson_small, b, **params.as_kwargs())
        assert result.converged

    def test_replace(self):
        params = GMRESParameters(tol=1e-6)
        new = params.replace(maxiter=10)
        assert new.maxiter == 10
        assert new.tol == 1e-6
        assert params.maxiter is None


class TestFaultsAndDetection:
    def _injector(self, factor, location, position="first"):
        return FaultInjector(ScalingFault(factor),
                             InjectionSchedule(aggregate_inner_iteration=location,
                                               mgs_position=position))

    def test_undetectable_fault_breaks_monotonicity_or_slows(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        clean = gmres(poisson_medium, b, tol=1e-10, maxiter=400)
        faulty = gmres(poisson_medium, b, tol=1e-10, maxiter=400,
                       injector=self._injector(10 ** -0.5, 1))
        assert faulty.converged
        assert faulty.iterations >= clean.iterations

    def test_large_fault_detected_with_bound_detector(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        result = gmres(poisson_medium, b, tol=1e-10, maxiter=400,
                       detector="bound", detector_response="zero",
                       injector=self._injector(1e150, 2))
        assert result.events.count("fault_injected") == 1
        assert result.events.count("fault_detected") >= 1
        assert result.converged

    def test_detector_raise_aborts(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        with pytest.raises(FaultDetectedError):
            gmres(poisson_medium, b, tol=1e-10, maxiter=400,
                  detector="bound", detector_response="raise",
                  injector=self._injector(1e150, 2))

    def test_detector_never_fires_without_faults(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        result = gmres(poisson_medium, b, tol=1e-10, maxiter=400,
                       detector="bound", detector_response="raise")
        assert result.converged
        assert result.events.count("fault_detected") == 0

    def test_explicit_detector_instance(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        det = HessenbergBoundDetector(frobenius_norm(poisson_medium))
        result = gmres(poisson_medium, b, tol=1e-10, maxiter=400, detector=det,
                       detector_response="recompute",
                       injector=self._injector(1e150, 0))
        clean = gmres(poisson_medium, b, tol=1e-10, maxiter=400)
        # recompute restores the correct value, so convergence is unaffected.
        assert result.iterations == clean.iterations

    def test_huge_fault_without_detector_still_terminates(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.shape[0])
        result = gmres(poisson_small, b, tol=1e-8, maxiter=100,
                       injector=self._injector(1e150, 0))
        assert result.iterations <= 100
        assert np.all(np.isfinite(result.residual_norm) or True)  # must not raise

    @pytest.mark.parametrize("policy", ["standard", "hybrid", "rank_revealing"])
    def test_lsq_policies_consistent_without_faults(self, poisson_small, rng, policy):
        b = rng.standard_normal(poisson_small.shape[0])
        result = gmres(poisson_small, b, tol=1e-10, maxiter=100, lsq_policy=policy)
        assert result.converged
        np.testing.assert_allclose(poisson_small.matvec(result.x), b, rtol=1e-6, atol=1e-7)


class TestOrthogonalizationVariants:
    @pytest.mark.parametrize("orth", ["mgs", "cgs", "cgs2"])
    def test_variants_converge(self, nonsym_small, rng, orth):
        b = rng.standard_normal(nonsym_small.shape[0])
        result = gmres(nonsym_small, b, tol=1e-10, maxiter=200, orthogonalization=orth)
        assert result.converged

    def test_unknown_variant_rejected(self, poisson_small, rng):
        with pytest.raises(ValueError):
            gmres(poisson_small, rng.standard_normal(poisson_small.shape[0]),
                  orthogonalization="householder")
