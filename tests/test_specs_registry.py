"""Tests for the component registry and the typed configuration specs.

Covers the tentpole's declarative layer:

* every registered component name resolves to a built component
  (hypothesis-sampled over the registry contents, so new registrations are
  covered automatically);
* ``CampaignSpec.from_dict(spec.to_dict())`` is equality-preserving over a
  hypothesis grid of solver/preconditioner/detector/backend combinations;
* unknown keys and bad enum values fail with errors naming the offending
  field (dotted paths for nested specs);
* the up-front backend/knob compatibility validation.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.detectors import (
    CompositeDetector,
    Detector,
    HessenbergBoundDetector,
    NonFiniteDetector,
    NormGrowthDetector,
    NullDetector,
)
from repro.exec.executor import BACKEND_KNOBS, BACKENDS, validate_backend_knobs
from repro.faults.models import FaultModel, PAPER_FAULT_CLASSES
from repro.gallery.problems import TestProblem, poisson_problem
from repro.precond.base import Preconditioner
from repro.registry import (
    RegistryError,
    ResolveContext,
    backend_knobs,
    names,
    parse_spec,
    registry,
    resolve,
    resolve_detector,
    resolve_fault_classes,
    resolve_preconditioner_apply,
    resolve_problem,
)
from repro.specs import (
    BOUND_METHODS,
    CampaignSpec,
    DETECTOR_RESPONSES,
    ExecutionSpec,
    LSQ_POLICIES,
    MGS_POSITIONS,
    ORTHOGONALIZATIONS,
    SOLVER_METHODS,
    SolveSpec,
    SpecError,
    apply_overrides,
    parse_override_value,
)


@pytest.fixture(scope="module")
def tiny_problem():
    return poisson_problem(grid_n=5)


# ====================================================================== #
# registry
# ====================================================================== #
class TestSpecGrammar:
    def test_plain_name(self):
        assert parse_spec("ilu0") == ("ilu0", {})

    def test_colon_arguments(self):
        name, params = parse_spec("bound:two_norm")
        assert name == "bound" and params == {"_args": ("two_norm",)}

    def test_dict_spec(self):
        assert parse_spec({"name": "ssor", "omega": 1.2}) == ("ssor", {"omega": 1.2})

    def test_dict_without_name_rejected(self):
        with pytest.raises(RegistryError, match="'name'"):
            parse_spec({"omega": 1.2})

    def test_non_spec_rejected(self):
        with pytest.raises(RegistryError, match="string, dict"):
            parse_spec(42)

    def test_empty_name_rejected(self):
        with pytest.raises(RegistryError, match="empty"):
            parse_spec(":frobenius")


class TestRegistryResolution:
    def test_unknown_name_lists_registered(self):
        with pytest.raises(RegistryError) as excinfo:
            resolve("detector", "magic")
        message = str(excinfo.value)
        assert "magic" in message and "bound" in message

    def test_unknown_namespace(self):
        with pytest.raises(RegistryError, match="namespace"):
            resolve("flux_capacitor", "bound")

    def test_bad_option_names_component(self, tiny_problem):
        with pytest.raises(RegistryError, match="ssor"):
            resolve("preconditioner", {"name": "ssor", "omega_typo": 1.2},
                    ResolveContext(A=tiny_problem.A))

    def test_too_many_colon_args(self):
        with pytest.raises(RegistryError, match="colon"):
            resolve("detector", "null:a")

    def test_colon_and_keyword_conflict(self, tiny_problem):
        with pytest.raises(RegistryError, match="both"):
            resolve("preconditioner", {"name": "ssor:1.2", "omega": 1.5},
                    ResolveContext(A=tiny_problem.A))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(RegistryError, match="duplicate"):
            registry.register("detector", "bound")(lambda ctx: None)

    def test_matrix_required_error_is_actionable(self):
        with pytest.raises(RegistryError, match="system matrix"):
            resolve("preconditioner", "ilu0")

    # ------------------------------------------------------------------ #
    # every registered name resolves (hypothesis-sampled so the property
    # keeps holding as namespaces grow)
    # ------------------------------------------------------------------ #
    @given(name=st.sampled_from(names("detector")))
    @settings(max_examples=20, deadline=None)
    def test_every_detector_name_resolves(self, name):
        ctx = ResolveContext(A=poisson_problem(grid_n=4).A)
        spec = {"name": name, "members": ["nonfinite"]} if name == "composite" else name
        det = resolve("detector", spec, ctx)
        assert isinstance(det, Detector)

    @given(name=st.sampled_from(names("preconditioner")))
    @settings(max_examples=20, deadline=None)
    def test_every_preconditioner_name_resolves(self, name):
        ctx = ResolveContext(A=poisson_problem(grid_n=4).A)
        precond = resolve("preconditioner", name, ctx)
        assert isinstance(precond, Preconditioner)

    @given(name=st.sampled_from(names("fault_model")))
    @settings(max_examples=20, deadline=None)
    def test_every_fault_model_name_resolves(self, name):
        needs_arg = {"scaling": "1e150", "absolute": "7.5", "additive": "0.5"}
        spec = f"{name}:{needs_arg[name]}" if name in needs_arg else name
        model = resolve("fault_model", spec)
        assert isinstance(model, FaultModel)

    @given(name=st.sampled_from(names("problem")))
    @settings(max_examples=10, deadline=None)
    def test_every_problem_name_resolves(self, name):
        sizes = {"poisson": "poisson:4", "circuit": "circuit:40"}
        problem = resolve_problem(sizes[name])
        assert isinstance(problem, TestProblem)

    def test_every_backend_name_resolves_with_knob_metadata(self):
        assert tuple(sorted(names("backend"))) == tuple(sorted(BACKENDS))
        for name in names("backend"):
            assert frozenset(backend_knobs(name)) == BACKEND_KNOBS[name]

    def test_every_solver_name_registered(self):
        assert set(names("solver")) == set(SOLVER_METHODS)


class TestHighLevelResolvers:
    def test_detector_instance_passthrough(self):
        det = NonFiniteDetector()
        assert resolve_detector(det) is det

    def test_detector_none_passthrough(self):
        assert resolve_detector(None) is None

    def test_detector_wrong_type(self):
        with pytest.raises(TypeError):
            resolve_detector(42)

    def test_bound_uses_context_bound_method(self, tiny_problem):
        fro = resolve_detector("bound", A=tiny_problem.A)
        two = resolve_detector("bound", A=tiny_problem.A, bound_method="two_norm")
        assert two.bound < fro.bound  # ||A||_2 <= ||A||_F

    def test_bound_colon_argument_overrides_context(self, tiny_problem):
        colon = resolve_detector("bound:two_norm", A=tiny_problem.A)
        kw = resolve_detector("bound", A=tiny_problem.A, bound_method="two_norm")
        assert colon.bound == kw.bound

    def test_preconditioner_apply_accepts_legacy_types(self, tiny_problem):
        import numpy as np

        n = tiny_problem.n
        assert resolve_preconditioner_apply(None, n=n) is None
        func = lambda r: r  # noqa: E731
        assert resolve_preconditioner_apply(func, n=n) is func
        apply = resolve_preconditioner_apply("jacobi", n=n, A=tiny_problem.A)
        r = np.ones(n)
        assert apply(r).shape == (n,)
        with pytest.raises(ValueError, match="shape"):
            resolve_preconditioner_apply(np.eye(3), n=n)

    def test_fault_classes_paper_and_dict(self):
        paper = resolve_fault_classes("paper")
        assert set(paper) == set(PAPER_FAULT_CLASSES)
        custom = resolve_fault_classes({"big": {"name": "scaling", "factor": 1e100},
                                        "wipe": "zero"})
        assert custom["big"].factor == 1e100
        assert custom["wipe"].corrupt(3.0) == 0.0

    def test_fault_classes_bad_shape(self):
        with pytest.raises(RegistryError, match="fault_classes"):
            resolve_fault_classes([1, 2, 3])


class TestComponentToSpecRoundTrip:
    """Built instances serialize back to specs that rebuild equivalently."""

    def test_detectors(self, tiny_problem):
        detectors = [
            NullDetector(),
            NonFiniteDetector(),
            HessenbergBoundDetector(12.5, slack=1.5, check_nonfinite=False),
            NormGrowthDetector(factor=1e4, floor=1e-200),
            CompositeDetector([NonFiniteDetector(), HessenbergBoundDetector(3.0)]),
        ]
        for det in detectors:
            rebuilt = resolve_detector(det.to_spec(), A=tiny_problem.A)
            assert type(rebuilt) is type(det)
            if isinstance(det, HessenbergBoundDetector):
                assert rebuilt.bound == det.bound
                assert rebuilt.slack == det.slack
                assert rebuilt.check_nonfinite == det.check_nonfinite

    def test_fault_models(self):
        from repro.faults.models import (
            AbsoluteFault,
            AdditiveFault,
            BitFlipFault,
            InfFault,
            NaNFault,
            ScalingFault,
            ZeroFault,
        )

        models = [ScalingFault(1e150), AbsoluteFault(4.0), AdditiveFault(-2.0),
                  ZeroFault(), NaNFault(), InfFault(), BitFlipFault(bit=52)]
        for model in models:
            rebuilt = resolve_fault_classes({"m": model.to_spec()})["m"]
            assert type(rebuilt) is type(model)
            assert rebuilt.describe() == model.describe()


# ====================================================================== #
# specs: validation errors name the offending field
# ====================================================================== #
class TestSpecValidation:
    def test_bad_enum_names_field(self):
        with pytest.raises(SpecError, match="orthogonalization") as excinfo:
            SolveSpec(orthogonalization="qr")
        assert excinfo.value.field == "orthogonalization"

    def test_bad_method(self):
        with pytest.raises(SpecError, match="method"):
            SolveSpec(method="bicgstab")

    def test_unknown_key_named(self):
        with pytest.raises(SpecError) as excinfo:
            SolveSpec.from_dict({"method": "gmres", "tollerance": 1e-8})
        assert excinfo.value.field == "tollerance"

    def test_nested_unknown_key_uses_dotted_path(self):
        with pytest.raises(SpecError) as excinfo:
            SolveSpec.from_dict({"method": "ft_gmres",
                                 "inner": {"method": "gmres", "maxitr": 3}})
        assert excinfo.value.field == "inner.maxitr"

    def test_nested_bad_enum_uses_dotted_path(self):
        with pytest.raises(SpecError) as excinfo:
            CampaignSpec.from_dict({"exec": {"backend": "gpu"}})
        assert excinfo.value.field == "exec.backend"

    def test_nested_solver_path(self):
        with pytest.raises(SpecError) as excinfo:
            CampaignSpec.from_dict(
                {"solver": {"method": "ft_gmres",
                            "inner": {"method": "gmres", "restarts": 2}}})
        assert excinfo.value.field == "solver.inner.restarts"

    def test_method_capability_matrix(self):
        with pytest.raises(SpecError, match="restart"):
            SolveSpec(method="fgmres", restart=10)
        with pytest.raises(SpecError, match="max_outer"):
            SolveSpec(method="gmres", max_outer=10)
        with pytest.raises(SpecError, match="detector"):
            SolveSpec(method="cg", detector="bound")
        with pytest.raises(SpecError, match="inner.method"):
            SolveSpec(method="ft_gmres", inner=SolveSpec(method="fgmres"))

    def test_campaign_bad_values(self):
        with pytest.raises(SpecError, match="mgs_position"):
            CampaignSpec(mgs_position="middle")
        with pytest.raises(SpecError, match="stride"):
            CampaignSpec(stride=0)
        with pytest.raises(SpecError, match="inner_iterations"):
            CampaignSpec(inner_iterations=0)
        with pytest.raises(SpecError, match=r"locations\[1\]"):
            CampaignSpec(locations=[1, "two"])
        with pytest.raises(SpecError, match="fault_classes"):
            CampaignSpec(fault_classes="exotic")
        with pytest.raises(SpecError, match="solver.method"):
            CampaignSpec(solver=SolveSpec(method="gmres"))

    def test_bool_is_not_an_int(self):
        with pytest.raises(SpecError, match="stride"):
            CampaignSpec(stride=True)

    def test_invalid_json_document(self):
        with pytest.raises(SpecError, match="invalid JSON"):
            CampaignSpec.from_json("{not json")


class TestExecutionSpecKnobs:
    def test_batch_size_with_process_rejected(self):
        with pytest.raises(SpecError, match="batch_size"):
            ExecutionSpec(backend="process", batch_size=8)

    def test_workers_with_serial_rejected(self):
        with pytest.raises(SpecError, match="workers"):
            ExecutionSpec(backend="serial", workers=4)

    def test_chunksize_with_batched_rejected(self):
        with pytest.raises(SpecError, match="chunksize"):
            ExecutionSpec(backend="batched", chunksize=2)

    def test_workers_one_is_always_consistent(self):
        assert ExecutionSpec(backend="serial", workers=1).workers == 1
        assert ExecutionSpec(backend="batched", workers=1).backend == "batched"

    def test_ambiguous_auto_backend_rejected(self):
        with pytest.raises(SpecError, match="mutually"):
            ExecutionSpec(workers=4, batch_size=8)

    def test_valid_combinations_accepted(self):
        ExecutionSpec(backend="process", workers=4, chunksize=2)
        ExecutionSpec(backend="thread", workers=2)
        ExecutionSpec(backend="batched", batch_size=16)
        ExecutionSpec()

    def test_validate_backend_knobs_direct(self):
        validate_backend_knobs(None, workers=4)
        validate_backend_knobs("batched", batch_size=4)
        with pytest.raises(ValueError, match="batch_size"):
            validate_backend_knobs("thread", batch_size=4)
        with pytest.raises(ValueError, match="backend"):
            validate_backend_knobs("gpu")


# ====================================================================== #
# specs: hypothesis round-trip grid
# ====================================================================== #
precond_specs = st.one_of(
    st.none(),
    st.sampled_from(["jacobi", "ilu0", "gauss_seidel", "identity"]),
    st.builds(lambda omega: {"name": "ssor", "omega": omega},
              st.floats(min_value=0.1, max_value=1.9)),
    st.builds(lambda d: {"name": "neumann", "degree": d},
              st.integers(min_value=1, max_value=4)),
)
detector_specs = st.one_of(
    st.none(),
    st.sampled_from(["bound", "bound:two_norm", "nonfinite", "null"]),
    st.builds(lambda f: {"name": "norm_growth", "factor": f},
              st.floats(min_value=2.0, max_value=1e6)),
)


@st.composite
def solve_specs(draw):
    method = draw(st.sampled_from(SOLVER_METHODS))
    fields = {"method": method,
              "tol": draw(st.sampled_from([0.0, 1e-10, 1e-8, 1e-6]))}
    if method in ("gmres", "cg"):
        fields["maxiter"] = draw(st.one_of(st.none(),
                                           st.integers(min_value=1, max_value=200)))
    if method == "gmres":
        fields["restart"] = draw(st.one_of(st.none(),
                                           st.integers(min_value=1, max_value=50)))
        fields["preconditioner"] = draw(precond_specs)
    if method == "cg":
        fields["preconditioner"] = draw(st.sampled_from([None, "jacobi"]))
    if method in ("fgmres", "ft_gmres"):
        fields["max_outer"] = draw(st.one_of(st.none(),
                                             st.integers(min_value=1, max_value=100)))
    if method in ("gmres", "fgmres", "ft_gmres"):
        fields["orthogonalization"] = draw(st.sampled_from(ORTHOGONALIZATIONS))
        fields["lsq_policy"] = draw(st.one_of(st.none(), st.sampled_from(LSQ_POLICIES)))
        fields["detector"] = draw(detector_specs)
        fields["detector_response"] = draw(st.sampled_from(DETECTOR_RESPONSES))
        fields["bound_method"] = draw(st.sampled_from(BOUND_METHODS))
    if method == "ft_gmres" and draw(st.booleans()):
        fields["inner"] = SolveSpec(
            method="gmres", tol=0.0,
            maxiter=draw(st.integers(min_value=1, max_value=50)),
            preconditioner=draw(precond_specs),
            detector=draw(detector_specs))
    return SolveSpec(**{k: v for k, v in fields.items() if v is not None
                        or k in ("maxiter", "restart", "max_outer", "lsq_policy")})


@st.composite
def execution_specs(draw):
    backend = draw(st.sampled_from([None, *BACKENDS]))
    fields = {"backend": backend}
    allowed = BACKEND_KNOBS[backend] if backend is not None else {"workers", "chunksize"}
    if "workers" in allowed:
        fields["workers"] = draw(st.one_of(st.none(),
                                           st.integers(min_value=1, max_value=8)))
    if "chunksize" in allowed:
        fields["chunksize"] = draw(st.one_of(st.none(),
                                             st.integers(min_value=1, max_value=16)))
    if "batch_size" in allowed:
        fields["batch_size"] = draw(st.one_of(st.none(),
                                              st.integers(min_value=1, max_value=64)))
    return ExecutionSpec(**fields)


fault_class_specs = st.one_of(
    st.just("paper"),
    st.dictionaries(
        st.sampled_from(["large", "small", "weird"]),
        st.one_of(st.sampled_from(["zero", "nan", "inf"]),
                  st.builds(lambda f: {"name": "scaling", "factor": f},
                            st.sampled_from([1e150, 10.0 ** -0.5, 1e-300]))),
        min_size=1, max_size=3),
)


@st.composite
def campaign_specs(draw):
    return CampaignSpec(
        problem=draw(st.sampled_from([None, "poisson:6",
                                      {"name": "circuit", "n_nodes": 50}])),
        inner_iterations=draw(st.integers(min_value=1, max_value=50)),
        max_outer=draw(st.integers(min_value=1, max_value=200)),
        outer_tol=draw(st.sampled_from([0.0, 1e-10, 1e-8])),
        fault_classes=draw(fault_class_specs),
        mgs_position=draw(st.sampled_from(MGS_POSITIONS)),
        detector=draw(detector_specs),
        detector_response=draw(st.sampled_from(DETECTOR_RESPONSES)),
        stride=draw(st.integers(min_value=1, max_value=25)),
        locations=draw(st.one_of(st.none(),
                                 st.lists(st.integers(min_value=0, max_value=500),
                                          min_size=1, max_size=5))),
        solver=draw(st.one_of(st.none(), st.just(SolveSpec(
            method="ft_gmres", inner=SolveSpec(method="gmres", tol=0.0,
                                               preconditioner="jacobi"))))),
        exec=draw(execution_specs()),
    )


class TestSpecRoundTrips:
    @given(spec=solve_specs())
    @settings(max_examples=60, deadline=None)
    def test_solve_spec_round_trip(self, spec):
        data = spec.to_dict()
        assert json.loads(json.dumps(data)) == data  # genuinely JSON-able
        assert SolveSpec.from_dict(data) == spec
        assert SolveSpec.from_json(spec.to_json()) == spec

    @given(spec=execution_specs())
    @settings(max_examples=40, deadline=None)
    def test_execution_spec_round_trip(self, spec):
        assert ExecutionSpec.from_dict(spec.to_dict()) == spec

    @given(spec=campaign_specs())
    @settings(max_examples=60, deadline=None)
    def test_campaign_spec_round_trip(self, spec):
        data = spec.to_dict()
        assert json.loads(json.dumps(data)) == data
        assert CampaignSpec.from_dict(data) == spec
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_instance_bearing_spec_serializes_via_to_spec(self):
        spec = CampaignSpec(detector=HessenbergBoundDetector(9.0),
                            fault_classes={"large": PAPER_FAULT_CLASSES["large"]})
        data = spec.to_dict()
        assert data["detector"] == {"name": "bound", "bound": 9.0}
        assert data["fault_classes"]["large"] == {"name": "scaling", "factor": 1e150}

    def test_unserializable_instance_names_field(self):
        class Opaque:
            pass

        spec = CampaignSpec(detector=Opaque())
        with pytest.raises(SpecError, match="detector"):
            spec.to_dict()


class TestOverrides:
    def test_parse_override_value(self):
        assert parse_override_value("25") == 25
        assert parse_override_value("1e-8") == 1e-8
        assert parse_override_value("true") is True
        assert parse_override_value("null") is None
        assert parse_override_value("batched") == "batched"
        assert parse_override_value("[1, 2]") == [1, 2]

    def test_dotted_paths_create_nested_specs(self):
        spec = apply_overrides(CampaignSpec(), {"solver.inner.maxiter": 12,
                                                "exec.backend": "batched"})
        assert spec.solver.inner.maxiter == 12
        assert spec.exec.backend == "batched"

    def test_list_values_become_tuples(self):
        spec = apply_overrides(CampaignSpec(), {"locations": [1, 2, 3]})
        assert spec.locations == (1, 2, 3)

    def test_unknown_field_names_path(self):
        with pytest.raises(SpecError, match="exec.bogus"):
            apply_overrides(CampaignSpec(), {"exec.bogus": 1})

    def test_overridden_spec_revalidates(self):
        with pytest.raises(SpecError, match="batch_size"):
            apply_overrides(CampaignSpec(), {"exec.backend": "process",
                                             "exec.batch_size": 8})

    def test_cannot_descend_into_scalar(self):
        with pytest.raises(SpecError, match="stride.deeper"):
            apply_overrides(CampaignSpec(), {"stride.deeper": 1})


class TestDefaultsSingleSource:
    """Satellite: FaultCampaign and sweep defaults derive from CampaignSpec."""

    def test_campaign_defaults_match_spec_defaults(self, tiny_problem):
        from repro.faults.campaign import FaultCampaign

        campaign = FaultCampaign(tiny_problem)
        defaults = CampaignSpec()
        assert campaign.inner_iterations == defaults.inner_iterations == 25
        assert campaign.max_outer == defaults.max_outer == 100
        assert campaign.outer_tol == defaults.outer_tol == 1e-8
        assert campaign.mgs_position == defaults.mgs_position
        assert campaign.detector_response == defaults.detector_response
        assert campaign.site == defaults.site

    def test_ftgmres_parameters_agree_with_campaign_defaults(self):
        from repro.core.ftgmres import FTGMRESParameters

        params = FTGMRESParameters()
        defaults = CampaignSpec()
        assert params.inner_iterations == defaults.inner_iterations
        assert params.outer.max_outer == defaults.max_outer
        assert params.outer.tol == defaults.outer_tol
