"""Block (multi-RHS) sparse kernels: matmat/rmatmat, multi-RHS triangular
solves, operator matmat defaults, and block preconditioner application.

The batched campaign engine leans on two properties established here:

* every column of ``CSRMatrix.matmat(X)`` / multi-RHS
  ``TriangularFactor.solve(B)`` / ``Preconditioner.apply_block(R)`` is
  *bit-identical* to the corresponding single-vector kernel on that column
  (the block kernels reduce in exactly the serial order), and
* block operands round-trip through every :class:`LinearOperator` flavor
  without densifying, flattening, or transposing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.gallery.convection_diffusion import convection_diffusion_2d
from repro.gallery.poisson import poisson2d
from repro.precond.identity import IdentityPreconditioner
from repro.precond.ilu import ILU0Preconditioner
from repro.precond.jacobi import BlockJacobiPreconditioner, JacobiPreconditioner
from repro.precond.polynomial import NeumannPolynomialPreconditioner
from repro.precond.ssor import GaussSeidelPreconditioner, SSORPreconditioner
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.sparse.linear_operator import MatrixFreeOperator, aslinearoperator
from repro.sparse.trisolve import TriangularFactor

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                          allow_infinity=False)


@st.composite
def csr_and_block(draw, max_dim=10, max_nnz=40, max_width=5):
    """A random CSR matrix (possibly with empty rows/cols) plus a dense block."""
    rows = draw(st.integers(min_value=1, max_value=max_dim))
    cols = draw(st.integers(min_value=1, max_value=max_dim))
    nnz = draw(st.integers(min_value=0, max_value=max_nnz))
    r = draw(hnp.arrays(np.int64, (nnz,), elements=st.integers(0, rows - 1)))
    c = draw(hnp.arrays(np.int64, (nnz,), elements=st.integers(0, cols - 1)))
    v = draw(hnp.arrays(np.float64, (nnz,), elements=finite_floats))
    A = COOMatrix((rows, cols), rows=r, cols=c, values=v).tocsr()
    width = draw(st.integers(min_value=1, max_value=max_width))
    X = draw(hnp.arrays(np.float64, (cols, width), elements=finite_floats))
    order = draw(st.sampled_from(["C", "F"]))
    return A, np.asarray(X, order=order)


class TestCSRMatmat:
    @given(csr_and_block())
    @settings(max_examples=80, deadline=None)
    def test_matmat_matches_scipy(self, case):
        A, X = case
        Y = A.matmat(X)
        assert Y.shape == (A.shape[0], X.shape[1])
        np.testing.assert_allclose(Y, A.to_scipy() @ X, rtol=1e-12, atol=1e-9)

    @given(csr_and_block())
    @settings(max_examples=80, deadline=None)
    def test_matmat_bit_identical_to_matvec_columns(self, case):
        A, X = case
        Y = A.matmat(X)
        for j in range(X.shape[1]):
            assert np.array_equal(Y[:, j], A.matvec(X[:, j]))

    @given(csr_and_block())
    @settings(max_examples=60, deadline=None)
    def test_rmatmat_matches_scipy(self, case):
        A, X = case
        # rmatmat takes a block with as many rows as A.
        R = np.ascontiguousarray(np.tile(X[: 1, :], (A.shape[0], 1)))
        Y = A.rmatmat(R)
        assert Y.shape == (A.shape[1], R.shape[1])
        np.testing.assert_allclose(Y, A.to_scipy().T @ R, rtol=1e-12, atol=1e-9)

    def test_single_column_matches_matvec(self):
        A = poisson2d(5)
        x = np.linspace(-1.0, 1.0, A.shape[1])
        assert np.array_equal(A.matmat(x[:, None])[:, 0], A.matvec(x))
        assert np.array_equal(A.rmatmat(x[:, None])[:, 0], A.rmatvec(x))

    def test_both_matmat_paths_agree(self):
        """The single-pass and the column-sweep kernels are interchangeable."""
        A = poisson2d(6)
        rng = np.random.default_rng(5)
        X = rng.standard_normal((A.shape[1], 4))
        single_pass = A.matmat(X)
        old_limit = CSRMatrix._MATMAT_BLOCK_LIMIT
        try:
            CSRMatrix._MATMAT_BLOCK_LIMIT = 0  # force the column sweep
            swept = A.matmat(X)
        finally:
            CSRMatrix._MATMAT_BLOCK_LIMIT = old_limit
        assert np.array_equal(single_pass, swept)

    def test_empty_rows_produce_zeros(self):
        A = COOMatrix((4, 3), rows=[0, 3], cols=[1, 2], values=[2.0, -1.0]).tocsr()
        Y = A.matmat(np.ones((3, 2)))
        assert np.array_equal(Y[1], np.zeros(2)) and np.array_equal(Y[2], np.zeros(2))
        np.testing.assert_allclose(Y[0], [2.0, 2.0])

    def test_dunder_matmul_dispatches_by_ndim(self):
        A = poisson2d(4)
        x = np.ones(A.shape[1])
        assert (A @ x).shape == (A.shape[0],)
        assert (A @ x[:, None]).shape == (A.shape[0], 1)

    def test_dimension_mismatch_raises(self):
        A = poisson2d(4)
        with pytest.raises(ValueError):
            A.matmat(np.ones((3, 2)))
        with pytest.raises(ValueError):
            A.rmatmat(np.ones((3, 2)))
        with pytest.raises(ValueError):
            A.matmat(np.ones((A.shape[1], 2, 2)))


class TestOperatorMatmat:
    def test_csr_operator_passthrough(self):
        A = convection_diffusion_2d(5)
        op = aslinearoperator(A)
        X = np.random.default_rng(0).standard_normal((A.shape[1], 3))
        assert np.array_equal(op.matmat(X), A.matmat(X))
        assert np.array_equal(op.rmatmat(np.ascontiguousarray(X)), A.rmatmat(X))

    def test_dense_operator_block(self):
        M = np.arange(12.0).reshape(3, 4)
        op = aslinearoperator(M)
        X = np.ones((4, 2))
        np.testing.assert_allclose(op.matmat(X), M @ X)
        np.testing.assert_allclose(op.rmatmat(np.ones((3, 2))), M.T @ np.ones((3, 2)))

    def test_scipy_operator_block_no_densify_no_flatten(self):
        """Block operands must survive the scipy wrapper with shape intact."""
        sp = pytest.importorskip("scipy.sparse")
        A = sp.random(7, 5, density=0.4, format="csr", random_state=3)
        op = aslinearoperator(A)
        X = np.random.default_rng(1).standard_normal((5, 3))
        Y = op.matmat(X)
        assert isinstance(Y, np.ndarray) and type(Y) is np.ndarray
        assert Y.shape == (7, 3)
        np.testing.assert_allclose(Y, A @ X)
        Yt = op.rmatmat(np.ones((7, 2)))
        assert Yt.shape == (5, 2)
        # The 1-D entry points now refuse blocks instead of silently
        # ravel()-ing them into a length n*B vector.
        with pytest.raises(ValueError):
            op.matvec(X)
        with pytest.raises(ValueError):
            op.rmatvec(np.ones((7, 2)))

    def test_matrix_free_default_is_column_loop(self):
        calls = []

        def mv(x):
            calls.append(1)
            return 2.0 * x

        op = MatrixFreeOperator((4, 4), mv)
        X = np.arange(8.0).reshape(4, 2)
        np.testing.assert_allclose(op.matmat(X), 2.0 * X)
        assert len(calls) == 2

    def test_matrix_free_native_matmat(self):
        op = MatrixFreeOperator((4, 4), lambda x: 2.0 * x, matmat=lambda X: 2.0 * X)
        X = np.arange(8.0).reshape(4, 2)
        np.testing.assert_allclose(op.matmat(X), 2.0 * X)

    def test_matrix_free_matmat_shape_check(self):
        op = MatrixFreeOperator((4, 4), lambda x: 2.0 * x, matmat=lambda X: X[:2])
        with pytest.raises(ValueError):
            op.matmat(np.ones((4, 2)))


@st.composite
def triangular_cases(draw, max_dim=9, max_width=4):
    n = draw(st.integers(min_value=1, max_value=max_dim))
    dense = draw(hnp.arrays(np.float64, (n, n),
                            elements=st.floats(min_value=-4.0, max_value=4.0,
                                               allow_nan=False, allow_infinity=False)))
    lower = draw(st.booleans())
    unit = draw(st.booleans())
    tri = np.tril(dense, k=-1) if lower else np.triu(dense, k=1)
    strict = CSRMatrix.from_dense(tri)
    diag = None if unit else draw(
        hnp.arrays(np.float64, (n,),
                   elements=st.floats(min_value=0.5, max_value=4.0)))
    width = draw(st.integers(min_value=1, max_value=max_width))
    B = draw(hnp.arrays(np.float64, (n, width), elements=finite_floats))
    mode = draw(st.sampled_from(["level", "sequential"]))
    factor = TriangularFactor(n, strict.indptr, strict.indices, strict.data,
                              diag, lower=lower, mode=mode)
    return factor, np.asarray(B, order=draw(st.sampled_from(["C", "F"])))


class TestTriangularMultiRHS:
    @given(triangular_cases())
    @settings(max_examples=80, deadline=None)
    def test_block_solve_bit_identical_to_columns(self, case):
        factor, B = case
        X = factor.solve(B)
        assert X.shape == B.shape
        for j in range(B.shape[1]):
            assert np.array_equal(X[:, j], factor.solve(B[:, j]))

    @given(triangular_cases())
    @settings(max_examples=40, deadline=None)
    def test_level_and_sequential_agree_on_blocks(self, case):
        factor, B = case
        assert np.array_equal(factor.solve(B, mode="level"),
                              factor.solve(B, mode="sequential"))

    def test_block_solve_matches_scipy(self):
        scipy_linalg = pytest.importorskip("scipy.linalg")
        rng = np.random.default_rng(7)
        n = 20
        dense = np.tril(rng.standard_normal((n, n)), k=-1)
        diag = rng.uniform(1.0, 2.0, n)
        strict = CSRMatrix.from_dense(dense)
        factor = TriangularFactor(n, strict.indptr, strict.indices, strict.data,
                                  diag, lower=True)
        B = rng.standard_normal((n, 3))
        expected = scipy_linalg.solve_triangular(dense + np.diag(diag), B, lower=True)
        np.testing.assert_allclose(factor.solve(B), expected, rtol=1e-10, atol=1e-12)

    def test_shape_validation(self):
        strict = CSRMatrix.from_dense(np.zeros((3, 3)))
        factor = TriangularFactor(3, strict.indptr, strict.indices, strict.data,
                                  np.ones(3))
        with pytest.raises(ValueError):
            factor.solve(np.ones((4, 2)))
        with pytest.raises(ValueError):
            factor.solve(np.ones((3, 2, 2)))
        with pytest.raises(ValueError):
            factor.solve(np.ones((1, 3)))  # a (1, n) row is not a vector


class TestPreconditionerBlocks:
    @pytest.mark.parametrize("build", [
        lambda A: JacobiPreconditioner(A),
        lambda A: NeumannPolynomialPreconditioner(A, degree=3),
        lambda A: ILU0Preconditioner(A),
        lambda A: GaussSeidelPreconditioner(A),
        lambda A: SSORPreconditioner(A, omega=1.3),
        lambda A: IdentityPreconditioner(A.shape[0]),
        lambda A: BlockJacobiPreconditioner(A, block_size=7),
    ])
    def test_apply_block_bit_identical_to_columns(self, build):
        A = convection_diffusion_2d(6)
        precond = build(A)
        R = np.random.default_rng(11).standard_normal((A.shape[0], 5))
        Z = precond.apply_block(R)
        assert Z.shape == R.shape
        for j in range(R.shape[1]):
            assert np.array_equal(Z[:, j], precond.apply(R[:, j]))
        # F-ordered blocks behave identically.
        assert np.array_equal(precond.apply_block(np.asfortranarray(R)), Z)

    def test_apply_block_shape_checks(self):
        precond = JacobiPreconditioner(poisson2d(4))
        with pytest.raises(ValueError):
            precond.apply_block(np.ones(precond.n))
        with pytest.raises(ValueError):
            precond.apply_block(np.ones((precond.n + 1, 2)))
