"""Tests for the level-scheduled triangular solve engine.

Covers the :class:`TriangularFactor` substitution kernels (vectorized
level-scheduled path and row-sequential fallback, asserted bit-identical),
the CSR triangle splitter, and the refactored ILU(0) factors — checked
against ``scipy.sparse.linalg.spsolve_triangular`` / ``splu`` on random
sparse, Poisson, convection–diffusion, and circuit matrices, including the
empty-row / missing-diagonal / zero-pivot edge cases.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gallery.circuit import mult_dcop_surrogate
from repro.gallery.convection_diffusion import convection_diffusion_2d
from repro.gallery.poisson import poisson1d, poisson2d
from repro.precond.ilu import ILU0Preconditioner
from repro.sparse.csr import CSRMatrix
from repro.sparse.trisolve import (
    SEQUENTIAL_LEVEL_THRESHOLD,
    TriangularFactor,
    split_triangle,
)


# ----------------------------------------------------------------------------
# strategies / helpers
# ----------------------------------------------------------------------------

@st.composite
def triangular_systems(draw, max_dim=24):
    """A random sparse triangular system as (dense matrix, lower, unit, rhs)."""
    n = draw(st.integers(min_value=1, max_value=max_dim))
    lower = draw(st.booleans())
    unit = draw(st.booleans())
    density = draw(st.floats(min_value=0.05, max_value=0.9))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    dense = rng.standard_normal((n, n))
    dense[rng.random((n, n)) > density] = 0.0
    dense = np.tril(dense, -1) if lower else np.triu(dense, 1)
    # Keep the system well conditioned: unit-magnitude diagonal, bounded fill.
    diag = rng.uniform(1.0, 2.0, n) * np.where(rng.random(n) < 0.5, 1.0, -1.0)
    np.fill_diagonal(dense, 1.0 if unit else diag)
    b = rng.standard_normal(n)
    return dense, lower, unit, b


def factor_from_dense(dense, lower, unit, mode="auto"):
    A = CSRMatrix.from_dense(dense)
    part = "lower" if lower else "upper"
    if unit:
        return TriangularFactor.from_csr(A, part, unit_diagonal=True, mode=mode)
    return TriangularFactor.from_csr(A, part, mode=mode)


# ----------------------------------------------------------------------------
# property-based: solves match scipy, paths match bit-for-bit
# ----------------------------------------------------------------------------

class TestSolveProperties:
    @given(triangular_systems())
    @settings(max_examples=80, deadline=None)
    def test_solve_matches_spsolve_triangular(self, system):
        dense, lower, unit, b = system
        factor = factor_from_dense(dense, lower, unit)
        x = factor.solve(b)
        ref = spla.spsolve_triangular(sp.csr_matrix(dense), b, lower=lower,
                                      unit_diagonal=unit)
        np.testing.assert_allclose(x, ref, rtol=1e-9, atol=1e-9)

    @given(triangular_systems())
    @settings(max_examples=80, deadline=None)
    def test_level_and_sequential_paths_bit_identical(self, system):
        dense, lower, unit, b = system
        factor = factor_from_dense(dense, lower, unit)
        np.testing.assert_array_equal(factor.solve(b, mode="level"),
                                      factor.solve(b, mode="sequential"))

    @given(triangular_systems())
    @settings(max_examples=40, deadline=None)
    def test_to_csr_roundtrip(self, system):
        dense, lower, unit, b = system
        factor = factor_from_dense(dense, lower, unit)
        np.testing.assert_allclose(factor.to_csr().todense(), dense,
                                   rtol=1e-12, atol=0.0)

    @given(triangular_systems())
    @settings(max_examples=40, deadline=None)
    def test_solve_residual(self, system):
        """``T x = b`` holds for the returned x (independent of scipy)."""
        dense, lower, unit, b = system
        factor = factor_from_dense(dense, lower, unit)
        x = factor.solve(b)
        np.testing.assert_allclose(dense @ x, b, rtol=1e-8, atol=1e-8)


# ----------------------------------------------------------------------------
# gallery matrices: the paper's problems
# ----------------------------------------------------------------------------

class TestGalleryMatrices:
    @pytest.mark.parametrize("make", [lambda: poisson2d(10),
                                      lambda: convection_diffusion_2d(10),
                                      lambda: mult_dcop_surrogate(150)])
    @pytest.mark.parametrize("part", ["lower", "upper"])
    def test_triangle_solves_match_scipy(self, make, part):
        A = make()
        n = A.shape[0]
        diag = A.diagonal()
        diag = np.where(diag == 0.0, 1.0, diag)
        factor = TriangularFactor.from_csr(A, part, diag=diag)
        b = np.random.default_rng(99).standard_normal(n)
        x = factor.solve(b)
        tri = sp.tril(A.to_scipy()) if part == "lower" else sp.triu(A.to_scipy())
        tri = tri.tocsr()
        tri.setdiag(diag)
        ref = spla.spsolve_triangular(tri, b, lower=(part == "lower"))
        np.testing.assert_allclose(x, ref, rtol=1e-9, atol=1e-9)
        # The two numpy reference paths are bit-identical (the default solve
        # may dispatch to a compiled tier under REPRO_KERNELS, which carries
        # the relative contract instead — see tests/test_kernel_engines.py).
        np.testing.assert_array_equal(factor.solve(b, mode="level"),
                                      factor.solve(b, mode="sequential"))

    def test_poisson_level_structure_is_wavefront(self):
        """On a 2-D grid the levels are the anti-diagonal wavefronts."""
        grid = 8
        A = poisson2d(grid)
        factor = TriangularFactor.from_csr(A, "lower", diag=A.diagonal())
        # Row (i, j) of the grid has level i + j: 2*grid - 1 levels in total.
        assert factor.num_levels == 2 * grid - 1
        ij = np.arange(grid * grid)
        np.testing.assert_array_equal(factor.levels, ij // grid + ij % grid)
        assert factor.mode == "level"

    def test_tridiagonal_is_fully_sequential(self):
        A = poisson1d(32)
        factor = TriangularFactor.from_csr(A, "lower", diag=A.diagonal())
        assert factor.num_levels == 32
        assert factor.mean_rows_per_level == 1.0
        assert factor.mode == "sequential"  # auto fallback
        b = np.random.default_rng(3).standard_normal(32)
        np.testing.assert_array_equal(factor.solve(b, mode="level"),
                                      factor.solve(b, mode="sequential"))

    def test_diagonal_matrix_is_one_level(self):
        A = CSRMatrix.identity(9).scale(4.0)
        factor = TriangularFactor.from_csr(A, "lower", diag=A.diagonal())
        assert factor.num_levels == 1
        np.testing.assert_allclose(factor.solve(np.ones(9)), np.full(9, 0.25))


# ----------------------------------------------------------------------------
# refactored ILU(0) factors
# ----------------------------------------------------------------------------

class TestILU0Factors:
    def test_tridiagonal_factors_match_splu(self):
        """ILU(0) of a tridiagonal matrix is an exact LU factorization, so
        the triangular engines must reproduce scipy's complete solve."""
        A = poisson1d(25)
        m = ILU0Preconditioner(A)
        lu = spla.splu(A.to_scipy().tocsc(), permc_spec="NATURAL",
                       options={"SymmetricMode": True, "DiagPivotThresh": 0.0})
        b = np.random.default_rng(1).standard_normal(25)
        np.testing.assert_allclose(m.apply(b), lu.solve(b), rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("make", [lambda: poisson2d(9),
                                      lambda: convection_diffusion_2d(9),
                                      lambda: mult_dcop_surrogate(120)])
    def test_apply_is_triangular_solve_chain(self, make):
        """``apply`` equals scipy triangular solves with the stored factors."""
        A = make()
        n = A.shape[0]
        m = ILU0Preconditioner(A)
        L, U = m.factors
        b = np.random.default_rng(5).standard_normal(n)
        y = spla.spsolve_triangular(L.to_csr().to_scipy(), b, lower=True,
                                    unit_diagonal=True)
        z = spla.spsolve_triangular(U.to_csr().to_scipy(), y, lower=False)
        np.testing.assert_allclose(m.apply(b), z, rtol=1e-9, atol=1e-10)

    def test_factor_product_matches_a_on_pattern(self):
        """L @ U agrees with A exactly on the pattern of A (the defining
        property of zero-fill ILU)."""
        A = convection_diffusion_2d(8)
        m = ILU0Preconditioner(A)
        L, U = m.factors
        product = L.to_csr().to_scipy() @ U.to_csr().to_scipy()
        dense_a = A.todense()
        pattern = dense_a != 0.0
        np.testing.assert_allclose(product.toarray()[pattern], dense_a[pattern],
                                   rtol=1e-10, atol=1e-12)


# ----------------------------------------------------------------------------
# edge cases
# ----------------------------------------------------------------------------

class TestEdgeCases:
    def test_empty_rows(self):
        """Rows without any stored entry solve as b_i / diag_i."""
        dense = np.zeros((5, 5))
        dense[3, 1] = 2.0
        A = CSRMatrix.from_dense(dense)
        factor = TriangularFactor.from_csr(A, "lower", diag=np.full(5, 2.0))
        b = np.arange(5, dtype=np.float64)
        x = factor.solve(b)
        expected = b / 2.0
        expected[3] = (b[3] - 2.0 * expected[1]) / 2.0
        np.testing.assert_allclose(x, expected)
        np.testing.assert_array_equal(factor.solve(b, mode="level"),
                                      factor.solve(b, mode="sequential"))

    def test_missing_diagonal_with_replacement(self):
        """A structurally missing diagonal is handled by the explicit diag."""
        dense = np.array([[0.0, 0.0], [3.0, 0.0]])
        A = CSRMatrix.from_dense(dense)
        factor = TriangularFactor.from_csr(A, "lower", diag=np.ones(2))
        np.testing.assert_allclose(factor.solve(np.array([1.0, 5.0])),
                                   np.array([1.0, 2.0]))

    def test_ilu_zero_pivot_shift_keeps_solve_finite(self):
        """A zero pivot triggers the surrogate shift; apply stays finite."""
        dense = np.array([[0.0, 1.0, 0.0],
                          [1.0, 2.0, 1.0],
                          [0.0, 1.0, 1.0]])
        A = CSRMatrix.from_dense(dense)
        m = ILU0Preconditioner(A)
        z = m.apply(np.ones(3))
        assert np.all(np.isfinite(z))

    def test_ilu_missing_diagonal_unit_pivot(self):
        """A row with no stored diagonal gets a unit pivot in the solve."""
        dense = np.array([[2.0, 1.0], [1.0, 0.0]])
        A = CSRMatrix.from_dense(dense)
        m = ILU0Preconditioner(A)
        z = m.apply(np.ones(2))
        assert np.all(np.isfinite(z))
        # Second pivot is the (shifted) Schur complement, not exactly zero.
        _, U = m.factors
        assert U.diag[1] != 0.0

    def test_ilu_duplicate_columns_summed_before_factorization(self):
        """Duplicate (i, j) entries are legal CSR input; ILU(0) must factor
        the canonical summed matrix, not silently drop contributions."""
        dup = CSRMatrix((2, 2), indptr=[0, 3, 5], indices=[0, 1, 1, 0, 1],
                        data=[4.0, 1.0, 1.0, 2.0, 5.0])
        summed = CSRMatrix((2, 2), indptr=[0, 2, 4], indices=[0, 1, 0, 1],
                           data=[4.0, 2.0, 2.0, 5.0])
        m_dup = ILU0Preconditioner(dup)
        m_sum = ILU0Preconditioner(summed)
        np.testing.assert_array_equal(m_dup.data, m_sum.data)
        r = np.array([1.0, 2.0])
        np.testing.assert_array_equal(m_dup.apply(r), m_sum.apply(r))

    def test_wrong_side_entry_rejected(self):
        with pytest.raises(ValueError, match="triangular"):
            TriangularFactor(2, [0, 0, 1], [1], [1.0], diag=np.ones(2), lower=True)
        with pytest.raises(ValueError, match="triangular"):
            TriangularFactor(2, [0, 1, 1], [0], [1.0], diag=np.ones(2), lower=False)
        with pytest.raises(ValueError, match="triangular"):
            # A diagonal entry is not part of a *strict* triangle either.
            TriangularFactor(2, [0, 1, 1], [0], [1.0], diag=np.ones(2), lower=True)

    def test_validation(self):
        factor = TriangularFactor(2, [0, 0, 1], [0], [1.0], diag=np.ones(2))
        with pytest.raises(ValueError):
            factor.solve(np.ones(3))
        with pytest.raises(ValueError):
            factor.solve(np.ones(2), mode="banana")
        with pytest.raises(ValueError):
            TriangularFactor(2, [0, 0, 1], [0], [1.0], diag=np.ones(2), mode="banana")
        with pytest.raises(ValueError):
            TriangularFactor(2, [0, 0, 1], [0], [1.0], diag=np.ones(3))
        with pytest.raises(ValueError):
            TriangularFactor(2, [0, 1], [0], [1.0], diag=np.ones(2))

    def test_empty_matrix(self):
        factor = TriangularFactor(0, [0], [], [], diag=np.zeros(0))
        assert factor.solve(np.zeros(0)).shape == (0,)
        assert factor.num_levels == 0

    def test_split_triangle_parts(self):
        rng = np.random.default_rng(11)
        dense = rng.standard_normal((7, 7))
        dense[rng.random((7, 7)) > 0.4] = 0.0
        np.fill_diagonal(dense, 1.0)
        A = CSRMatrix.from_dense(dense)
        for part, ref in (("lower", np.tril(dense, -1)), ("upper", np.triu(dense, 1))):
            indptr, indices, data = split_triangle(A.indptr, A.indices, A.data, 7, part)
            got = CSRMatrix((7, 7), indptr, indices, data).todense()
            np.testing.assert_allclose(got, ref, rtol=0, atol=0)
        with pytest.raises(ValueError):
            split_triangle(A.indptr, A.indices, A.data, 7, "diag")

    def test_schedule_stats_and_repr(self):
        A = poisson2d(6)
        factor = TriangularFactor.from_csr(A, "lower", diag=A.diagonal())
        stats = factor.schedule_stats()
        assert stats["n"] == 36
        assert stats["num_levels"] == factor.num_levels
        assert stats["mode"] in ("level", "sequential")
        assert "TriangularFactor" in repr(factor)
        assert SEQUENTIAL_LEVEL_THRESHOLD > 1.0
