"""The trial-batched campaign engine vs the serial reference.

The batched backend's contract: for every trial, iteration counts, statuses,
classification and event streams are identical to the serial backend, and
residual norms agree to ~1e-10 (bit-identical where the reduction order
matches).  Trials that leave the lockstep common path — happy breakdown,
early inner convergence, chaotic huge-magnitude faults — are transparently
rerun through the serial engine and therefore match exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batched import (
    BatchedGivensQR,
    BatchedTrialSetup,
    _batched_givens,
    batched_ft_gmres,
    batched_support_reason,
)
from repro.core.ftgmres import ft_gmres
from repro.core.gmres import GMRESParameters
from repro.core.least_squares import IncrementalGivensQR, givens_rotation
from repro.exec.executor import CampaignExecutor
from repro.faults.campaign import FaultCampaign
from repro.faults.injector import FaultInjector
from repro.faults.models import (
    InfFault,
    NaNFault,
    PAPER_FAULT_CLASSES,
    ScalingFault,
)
from repro.faults.schedule import InjectionSchedule
from repro.gallery.problems import TestProblem, circuit_problem, poisson_problem
from repro.sparse.csr import CSRMatrix


# --------------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------------- #
def assert_records_equivalent(serial, batched, rtol=1e-10):
    """Field-by-field TrialRecord equivalence with the engine's tolerance."""
    assert len(serial.trials) == len(batched.trials)
    assert batched.failure_free_outer == serial.failure_free_outer
    for s, b in zip(serial.trials, batched.trials):
        assert (s.fault_class, s.aggregate_inner_iteration) == \
            (b.fault_class, b.aggregate_inner_iteration)
        assert s.outer_iterations == b.outer_iterations
        assert s.total_inner_iterations == b.total_inner_iterations
        assert s.converged == b.converged
        assert s.status == b.status
        assert s.faults_injected == b.faults_injected
        assert s.faults_detected == b.faults_detected
        assert s.detector_enabled == b.detector_enabled
        if np.isnan(s.residual_norm):
            assert np.isnan(b.residual_norm)
        else:
            assert abs(s.residual_norm - b.residual_norm) <= \
                rtol * max(1.0, abs(s.residual_norm))


def event_signature(events):
    return [(e.kind, e.where, e.outer_iteration, e.inner_iteration) for e in events]


@pytest.fixture(scope="module")
def tiny_problem():
    return poisson_problem(grid_n=8)


@pytest.fixture(scope="module")
def detector_campaign(tiny_problem):
    return FaultCampaign(tiny_problem, inner_iterations=10, max_outer=50,
                         detector="bound", detector_response="zero")


# --------------------------------------------------------------------------- #
# lockstep building blocks
# --------------------------------------------------------------------------- #
class TestBatchedGivensQR:
    def test_lanes_bitwise_match_scalar_qr(self):
        rng = np.random.default_rng(3)
        m, lanes = 8, 5
        beta = rng.uniform(0.5, 2.0, lanes)
        batched = BatchedGivensQR(m, beta)
        scalars = [IncrementalGivensQR(m, b) for b in beta]
        for j in range(m):
            cols = rng.standard_normal((j + 2, lanes))
            resid = batched.add_column(cols)
            for lane, qr in enumerate(scalars):
                expected = qr.add_column(cols[:, lane])
                assert resid[lane] == expected
        for lane, qr in enumerate(scalars):
            assert np.array_equal(batched.lane_R(lane), qr.R)
            assert np.array_equal(batched.lane_g(lane), qr.g)

    def test_solve_standard_matches_scalar_triangular_solve(self):
        from repro.core.least_squares import solve_triangular

        rng = np.random.default_rng(4)
        m, lanes = 6, 4
        batched = BatchedGivensQR(m, rng.uniform(0.5, 2.0, lanes))
        for j in range(m):
            batched.add_column(rng.standard_normal((j + 2, lanes)))
        Y = batched.solve_standard()
        for lane in range(lanes):
            expected = solve_triangular(batched.lane_R(lane),
                                        batched.lane_g(lane)[:m])
            np.testing.assert_allclose(Y[:, lane], expected, rtol=1e-13)

    def test_validation(self):
        qr = BatchedGivensQR(2, np.ones(3))
        with pytest.raises(ValueError):
            qr.add_column(np.zeros((3, 3)))  # wrong leading dimension
        qr.add_column(np.zeros((2, 3)))
        qr.add_column(np.zeros((3, 3)))
        with pytest.raises(RuntimeError):
            qr.add_column(np.zeros((4, 3)))
        with pytest.raises(ValueError):
            BatchedGivensQR(0, np.ones(2))


class TestBatchedGivensRotation:
    @pytest.mark.parametrize("a,b", [
        (0.0, 0.0), (1.5, 0.0), (0.0, -2.0), (3.0, 4.0), (4.0, 3.0),
        (-1e-300, 1e300), (1e300, -1e-300), (np.nan, 1.0), (1.0, np.inf),
        (-7.25, 0.5), (0.5, -7.25),
    ])
    def test_matches_scalar_rotation_bitwise(self, a, b):
        c, s = _batched_givens(np.array([a]), np.array([b]))
        cs, ss = givens_rotation(a, b)
        assert (c[0] == cs or (np.isnan(c[0]) and np.isnan(cs)))
        assert (s[0] == ss or (np.isnan(s[0]) and np.isnan(ss)))


# --------------------------------------------------------------------------- #
# campaign-level equivalence
# --------------------------------------------------------------------------- #
class TestCampaignEquivalence:
    def test_detector_campaign_matches_serial(self, detector_campaign):
        serial = detector_campaign.run(stride=7)
        batched = detector_campaign.run(stride=7, backend="batched", batch_size=8)
        assert_records_equivalent(serial, batched)

    def test_no_detector_campaign_matches_serial(self, tiny_problem):
        campaign = FaultCampaign(tiny_problem, inner_iterations=10, max_outer=50)
        serial = campaign.run(stride=7)
        batched = campaign.run(stride=7, backend="batched")
        assert_records_equivalent(serial, batched)

    def test_batch_size_only_perturbs_within_tolerance(self, detector_campaign):
        """Any batch size stays within the serial-equivalence contract.

        Results are *deterministic* for a fixed batch size; across batch
        sizes the lockstep reductions may block differently (einsum picks
        its blocking by operand shape), so residuals agree to the same
        ~1e-10 contract as against serial rather than bit-for-bit.
        """
        serial = detector_campaign.run(stride=9)
        reference = detector_campaign.run(stride=9, backend="batched", batch_size=64)
        assert detector_campaign.run(stride=9, backend="batched",
                                     batch_size=64).trials == reference.trials
        for batch_size in (1, 3, 7):
            again = detector_campaign.run(stride=9, backend="batched",
                                          batch_size=batch_size)
            assert_records_equivalent(serial, again)

    def test_mgs_last_position(self, tiny_problem):
        campaign = FaultCampaign(tiny_problem, inner_iterations=10, max_outer=50,
                                 mgs_position="last", detector="bound",
                                 detector_response="zero")
        assert_records_equivalent(campaign.run(stride=9),
                                  campaign.run(stride=9, backend="batched"))

    def test_nonsymmetric_circuit_problem(self):
        problem = circuit_problem(200)
        campaign = FaultCampaign(problem, inner_iterations=10, max_outer=60,
                                 detector="bound", detector_response="zero")
        assert_records_equivalent(campaign.run(stride=17),
                                  campaign.run(stride=17, backend="batched"))

    @pytest.mark.parametrize("response", ["flag", "clamp", "recompute"])
    def test_detector_responses(self, tiny_problem, response):
        campaign = FaultCampaign(tiny_problem, inner_iterations=10, max_outer=30,
                                 detector="bound", detector_response=response)
        assert_records_equivalent(campaign.run(stride=11),
                                  campaign.run(stride=11, backend="batched"))


class TestCommonPathExits:
    def test_converge_at_first_outer_iteration(self, tiny_problem):
        """A loose tolerance makes every trial converge at outer iteration 1."""
        campaign = FaultCampaign(tiny_problem, inner_iterations=10, max_outer=50,
                                 outer_tol=1e-1)
        serial = campaign.run(stride=7)
        assert any(t.outer_iterations == 1 for t in serial.trials)
        assert_records_equivalent(serial, campaign.run(stride=7, backend="batched"))

    def test_happy_breakdown_mid_batch(self):
        """On the identity matrix every inner solve breaks down at step 1."""
        problem = TestProblem(name="identity", A=CSRMatrix.identity(30),
                              b=np.ones(30), spd=True)
        campaign = FaultCampaign(problem, inner_iterations=5, max_outer=10)
        serial = campaign.run(locations=[0, 1, 2, 3])
        batched = campaign.run(locations=[0, 1, 2, 3], backend="batched")
        assert_records_equivalent(serial, batched)

    def test_nan_trial_continues_while_batch_mates_converge(self, tiny_problem):
        """A NaN-injected lane stays in lockstep (the serial solver also runs
        its full budget on NaN data) while clean batch-mates converge."""
        classes = {"nan": NaNFault(), "inf": InfFault(),
                   "benign": ScalingFault(10.0 ** -0.5)}
        campaign = FaultCampaign(tiny_problem, inner_iterations=10, max_outer=30,
                                 fault_classes=classes)
        serial = campaign.run(stride=9)
        assert_records_equivalent(serial, campaign.run(stride=9, backend="batched"))

    def test_chaotic_large_fault_is_serial_exact(self, tiny_problem):
        """Huge (1e150-scale) faults without a filtering detector are peeled
        to the serial engine, so their records match *exactly*."""
        campaign = FaultCampaign(
            tiny_problem, inner_iterations=10, max_outer=30,
            fault_classes={"large": PAPER_FAULT_CLASSES["large"]})
        serial = campaign.run(stride=9)
        batched = campaign.run(stride=9, backend="batched")
        assert batched.trials == serial.trials  # exact, not just equivalent


class TestEventStreams:
    def _nested_results(self, campaign, location):
        """The same trial through ft_gmres and through batched_ft_gmres."""
        problem = campaign.problem
        model = campaign.fault_classes["large"]

        def make_injector():
            schedule = InjectionSchedule(site="hessenberg",
                                         aggregate_inner_iteration=location,
                                         mgs_position="first",
                                         persistence="transient")
            return FaultInjector(model, schedule)

        serial = ft_gmres(problem.A, problem.b, problem.x0,
                          params=campaign.params, injector=make_injector())
        setups = [BatchedTrialSetup(injector=make_injector(),
                                    hessenberg_target=location)]
        results = batched_ft_gmres(problem.A, problem.b, problem.x0,
                                   campaign.params, setups)
        return serial, results[0]

    def test_event_streams_identical(self, detector_campaign):
        serial, batched = self._nested_results(detector_campaign, location=12)
        assert batched is not None, "trial unexpectedly left the lockstep path"
        assert event_signature(batched.events) == event_signature(serial.events)
        assert batched.outer_iterations == serial.outer_iterations
        assert batched.total_inner_iterations == serial.total_inner_iterations
        assert batched.status == serial.status
        np.testing.assert_allclose(batched.history.as_array(),
                                   serial.history.as_array(),
                                   rtol=1e-10, atol=1e-12)

    def test_inner_histories_match(self, detector_campaign):
        serial, batched = self._nested_results(detector_campaign, location=5)
        assert batched is not None
        assert len(batched.inner_results) == len(serial.inner_results)
        for s_inner, b_inner in zip(serial.inner_results, batched.inner_results):
            assert b_inner.iterations == s_inner.iterations
            assert b_inner.status == s_inner.status
            assert b_inner.matvecs == s_inner.matvecs
            expected = s_inner.history.as_array()
            # The contract: histories agree to 1e-10 on the scale of the
            # solve (the initial residual norm).
            scale = max(1.0, float(expected[0]))
            np.testing.assert_allclose(b_inner.history.as_array(), expected,
                                       rtol=0.0, atol=1e-10 * scale)


# --------------------------------------------------------------------------- #
# configuration gating and executor integration
# --------------------------------------------------------------------------- #
class TestGating:
    def test_supported_configuration(self, detector_campaign):
        assert detector_campaign.batched_unsupported_reason() is None

    def test_non_mgs_inner_rejected(self, tiny_problem):
        campaign = FaultCampaign(
            tiny_problem, inner_iterations=10, max_outer=30,
            inner_params=GMRESParameters(tol=0.0, maxiter=10,
                                         orthogonalization="cgs2"))
        assert campaign.batched_unsupported_reason() is not None
        with pytest.raises(ValueError, match="not supported by the batched"):
            campaign.run(stride=11, backend="batched")

    def test_raise_response_rejected(self, tiny_problem):
        campaign = FaultCampaign(tiny_problem, inner_iterations=10, max_outer=30,
                                 detector="bound", detector_response="raise")
        assert "raise" in campaign.batched_unsupported_reason()

    def test_spmv_site_supported(self, tiny_problem):
        campaign = FaultCampaign(tiny_problem, inner_iterations=10, max_outer=30,
                                 site="spmv")
        assert campaign.batched_unsupported_reason() is None

    def test_unsupported_site_rejected(self, tiny_problem):
        campaign = FaultCampaign(tiny_problem, inner_iterations=10, max_outer=30,
                                 site="givens")
        assert "site" in campaign.batched_unsupported_reason()

    def test_mixed_site_list_rejected(self, tiny_problem):
        # A comma list is batched-eligible only when *every* site is.
        campaign = FaultCampaign(tiny_problem, inner_iterations=10, max_outer=30,
                                 site="spmv,precond")
        assert "site" in campaign.batched_unsupported_reason()

    def test_stateful_detector_rejected(self, tiny_problem):
        from repro.core.detectors import NormGrowthDetector

        campaign = FaultCampaign(tiny_problem, inner_iterations=10, max_outer=30,
                                 detector=NormGrowthDetector())
        assert "NormGrowthDetector" in campaign.batched_unsupported_reason()

    def test_support_reason_helper(self, detector_campaign):
        assert batched_support_reason(detector_campaign.params, "hessenberg") is None
        assert batched_support_reason(detector_campaign.params, "subdiag") is not None


class TestExecutorIntegration:
    def test_backend_listed(self):
        from repro.exec.executor import BACKENDS

        assert "batched" in BACKENDS

    def test_executor_runs_batched(self, detector_campaign):
        executor = CampaignExecutor(detector_campaign, backend="batched",
                                    batch_size=4)
        specs = detector_campaign.trial_specs([1, 12, 23])
        records = executor.run(specs)
        assert [r.fault_class for r in records] == [s.fault_class for s in specs]

    def test_spec_order_defines_output_order(self, detector_campaign):
        executor = CampaignExecutor(detector_campaign, backend="batched")
        specs = detector_campaign.trial_specs([1, 12])
        assert executor.run(list(reversed(specs))) == executor.run(specs)

    def test_progress_reaches_total(self, detector_campaign):
        calls = []
        detector_campaign.run(stride=11, backend="batched", batch_size=2,
                              progress=lambda done, total: calls.append((done, total)))
        assert calls and calls[-1][0] == calls[-1][1]
        assert [d for d, _ in calls] == sorted(d for d, _ in calls)

    def test_invalid_batch_size(self, detector_campaign):
        with pytest.raises(ValueError):
            CampaignExecutor(detector_campaign, backend="batched", batch_size=0)
        with pytest.raises(ValueError):
            detector_campaign.run_specs_batched(
                detector_campaign.trial_specs([1]), batch_size=-1)

    def test_empty_specs(self, detector_campaign):
        assert detector_campaign.run_specs_batched([]) == []

    def test_unknown_fault_class(self, detector_campaign):
        from repro.exec.spec import TrialSpec

        with pytest.raises(KeyError):
            detector_campaign.run_specs_batched([TrialSpec(0, "no-such", 1)])
