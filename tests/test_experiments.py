"""Unit tests for the experiment drivers (Table I, Figures 2-4, summary, reports)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figure2 import figure2_comparison, hessenberg_structure, pattern_string
from repro.experiments.figure34 import FigureSweep, run_fault_sweep
from repro.experiments.report import ascii_series_plot, format_markdown_table, format_table
from repro.experiments.summary import (
    detector_comparison,
    fraction_no_penalty,
    median_increase,
    summarize_campaign,
    worst_case_increase,
)
from repro.experiments.table1 import (
    PAPER_TABLE1,
    condition_estimate,
    matrix_properties,
    table1_rows,
)
from repro.gallery.poisson import poisson2d
from repro.gallery.problems import circuit_problem, poisson_problem
from repro.gallery.random_sparse import tridiagonal


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bee"], [[1, 2.5], ["x", 1e-7]], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "bee" in lines[1]
        assert len(lines) == 5

    def test_markdown_table(self):
        text = format_markdown_table(["col"], [[3.14159]], title="t")
        assert text.startswith("**t**")
        assert "| col |" in text
        assert "|---|" in text

    def test_ascii_plot_basic(self):
        x = np.arange(10)
        y = np.arange(10) ** 2
        text = ascii_series_plot(x, y, width=40, height=8, title="parabola",
                                 xlabel="x", ylabel="y")
        assert "parabola" in text
        assert "*" in text
        assert "x" in text.splitlines()[-1]

    def test_ascii_plot_empty(self):
        assert "(no data)" in ascii_series_plot([], [], title="empty")

    def test_ascii_plot_constant_series(self):
        text = ascii_series_plot([0, 1, 2], [5, 5, 5])
        assert "*" in text

    def test_ascii_plot_mismatched_lengths(self):
        with pytest.raises(ValueError):
            ascii_series_plot([1, 2], [1])


class TestTable1:
    def test_poisson_properties_match_paper(self):
        """At the paper's size the generated matrix matches Table I exactly
        for the structural entries and closely for the norms."""
        problem = poisson_problem(grid_n=100)
        props = matrix_properties(problem, compute_condition=False)
        paper = PAPER_TABLE1["poisson"]
        assert props["rows"] == paper["rows"]
        assert props["nnz"] == paper["nnz"]
        assert props["structural_full_rank"] == paper["structural_full_rank"]
        assert props["pattern_symmetric"] == paper["pattern_symmetric"]
        # ||A||_2 -> 8 as the grid grows; ||A||_F = sqrt(16n^2 + 2*(nnz-n^2)).
        assert props["two_norm"] == pytest.approx(paper["two_norm"], rel=2e-3)
        assert props["frobenius_norm"] == pytest.approx(paper["frobenius_norm"], rel=2e-2)

    def test_poisson_condition_small_grid(self):
        problem = poisson_problem(grid_n=10)
        props = matrix_properties(problem, compute_condition=True, condition_method="dense")
        # cond_2 of gallery('poisson', n) ~ (2(n+1)/pi)^2; for n=10 about 49.
        assert 30 < props["condition_number"] < 80

    def test_circuit_properties(self):
        problem = circuit_problem(300)
        props = matrix_properties(problem, compute_condition=True, condition_method="dense")
        assert props["pattern_symmetric"] is False or props["numerically_symmetric"] is False
        assert props["structural_full_rank"]
        assert props["condition_number"] > PAPER_TABLE1["poisson"]["condition_number"]

    def test_condition_estimate_methods_agree(self):
        A = poisson2d(12)
        dense = condition_estimate(A, method="dense")
        sparse = condition_estimate(A, method="sparse")
        # 1-norm and 2-norm condition numbers agree within a modest factor.
        assert dense / 5 < sparse < dense * 5

    def test_condition_estimate_unknown_method(self):
        with pytest.raises(ValueError):
            condition_estimate(poisson2d(4), method="guess")

    def test_table_rows_layout(self):
        problems = {"poisson": poisson_problem(grid_n=8), "circuit": circuit_problem(100)}
        headers, rows = table1_rows(problems, compute_condition=False)
        assert headers == ["Properties", "poisson", "circuit"]
        assert rows[0][0] == "number of rows"
        assert len(rows) == 9
        sym_row = [r for r in rows if r[0] == "nonzero pattern symmetry"][0]
        assert sym_row[1] == "symmetric"


class TestFigure2:
    def test_spd_gives_tridiagonal(self):
        report = hessenberg_structure(poisson2d(8), steps=8)
        assert report["is_tridiagonal"]
        assert report["orthogonality_error"] < 1e-8

    def test_nonsymmetric_gives_full_hessenberg(self):
        report = hessenberg_structure(tridiagonal(40, -1.0, 3.0, -2.0), steps=8)
        assert not report["is_tridiagonal"]
        assert report["bandwidth"] > 1

    def test_pattern_string(self):
        H = np.array([[1.0, 2.0], [1e-14, 3.0], [0.0, 1.0]])
        text = pattern_string(H)
        lines = text.splitlines()
        assert lines[0] == "x x"
        assert lines[1] == "0 x"

    def test_comparison_consistent_with_paper(self):
        result = figure2_comparison(poisson2d(8), tridiagonal(40, -1.0, 3.0, -2.0), steps=8)
        assert result["consistent_with_paper"]


class TestFigure34AndSummary:
    @pytest.fixture(scope="class")
    def sweeps(self):
        problem = poisson_problem(grid_n=8)
        from repro.faults.models import ScalingFault

        common = dict(inner_iterations=6, max_outer=30, stride=6,
                      fault_classes={"large": ScalingFault(1e150)})
        without = run_fault_sweep(problem, mgs_position="first", detector=None, **common)
        with_det = run_fault_sweep(problem, mgs_position="first", detector="bound",
                                   detector_response="zero", **common)
        return without, with_det

    def test_sweep_results_shape(self, sweeps):
        without, _ = sweeps
        assert without.failure_free_outer > 0
        assert len(without.trials) > 0
        assert without.mgs_position == "first"

    def test_detector_detects_large_faults(self, sweeps):
        _, with_det = sweeps
        assert with_det.detection_rate("large") == 1.0

    def test_summary_fields(self, sweeps):
        without, _ = sweeps
        summary = summarize_campaign(without)
        assert summary["failure_free_outer"] == without.failure_free_outer
        assert summary["worst_case_increase"] >= 0
        assert "large" in summary["per_class"]
        assert 0.0 <= summary["per_class"]["large"]["fraction_no_penalty"] <= 1.0

    def test_detector_comparison(self, sweeps):
        without, with_det = sweeps
        comparison = detector_comparison(without, with_det)
        assert comparison["worst_case_with"] <= comparison["worst_case_without"] + 1
        assert isinstance(comparison["detector_helps"], (bool, np.bool_))

    def test_helper_statistics(self, sweeps):
        without, _ = sweeps
        assert worst_case_increase(without) >= 0
        assert median_increase(without, "large") >= 0.0
        assert 0.0 <= fraction_no_penalty(without, "large") <= 1.0

    def test_figure_sweep_render(self, sweeps):
        without, with_det = sweeps
        fig = FigureSweep(problem_name="poisson-8x8", first=without, last=with_det)
        text = fig.render(width=40, height=6)
        assert "poisson-8x8" in text
        assert "fault class: large" in text
        assert "worst outer" in text
