"""Unit tests for repro.utils (validation, RNG, timer, events)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.utils.events import EventLog, SolverEvent
from repro.utils.rng import as_generator, spawn_generators
from repro.utils.timer import Timer
from repro.utils.validation import (
    as_dense_vector,
    check_matching_shapes,
    check_square,
    require_nonnegative,
    require_positive_int,
)


class TestAsDenseVector:
    def test_list_to_vector(self):
        v = as_dense_vector([1, 2, 3])
        assert v.dtype == np.float64
        assert v.shape == (3,)

    def test_column_vector_flattened(self):
        v = as_dense_vector(np.ones((4, 1)))
        assert v.shape == (4,)

    def test_row_vector_flattened(self):
        v = as_dense_vector(np.ones((1, 5)))
        assert v.shape == (5,)

    def test_length_enforced(self):
        with pytest.raises(ValueError, match="length"):
            as_dense_vector([1.0, 2.0], n=3)

    def test_matrix_rejected(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            as_dense_vector(np.ones((2, 3)))

    def test_contiguous_output(self):
        base = np.arange(20, dtype=np.float64)[::2]
        v = as_dense_vector(base)
        assert v.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(v, base)


class TestShapeChecks:
    def test_check_square_ok(self):
        assert check_square((5, 5)) == 5

    def test_check_square_rejects_rectangular(self):
        with pytest.raises(ValueError, match="square"):
            check_square((5, 4))

    def test_check_square_rejects_1d(self):
        with pytest.raises(ValueError):
            check_square((5,))

    def test_check_matching_shapes(self):
        check_matching_shapes((4, 4), np.zeros(4))
        with pytest.raises(ValueError, match="rows"):
            check_matching_shapes((4, 4), np.zeros(3))


class TestScalarValidators:
    def test_positive_int(self):
        assert require_positive_int(3, "x") == 3

    @pytest.mark.parametrize("bad", [0, -1, 2.5])
    def test_positive_int_rejects(self, bad):
        with pytest.raises(ValueError):
            require_positive_int(bad, "x")

    def test_nonnegative(self):
        assert require_nonnegative(0.0, "x") == 0.0
        assert require_nonnegative(1.5, "x") == 1.5

    @pytest.mark.parametrize("bad", [-1e-9, float("nan"), float("inf")])
    def test_nonnegative_rejects(self, bad):
        with pytest.raises(ValueError):
            require_nonnegative(bad, "x")


class TestRng:
    def test_as_generator_from_seed_is_deterministic(self):
        a = as_generator(42).standard_normal(5)
        b = as_generator(42).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_as_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_spawn_generators_independent(self):
        children = spawn_generators(0, 3)
        assert len(children) == 3
        draws = [g.standard_normal(4) for g in children]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_spawn_generators_negative_count(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.001)
        with t:
            time.sleep(0.001)
        assert t.calls == 2
        assert t.elapsed > 0.0
        assert t.mean > 0.0

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.calls == 0
        assert t.elapsed == 0.0
        assert t.mean == 0.0


class TestEventLog:
    def test_record_and_query(self):
        log = EventLog()
        log.record("fault_injected", where="hessenberg", inner_iteration=3, original=1.0)
        log.record("fault_detected", where="hessenberg", inner_iteration=3)
        log.record("fault_injected", where="spmv")
        assert len(log) == 3
        assert log.count("fault_injected") == 2
        assert log.has("fault_detected")
        assert not log.has("happy_breakdown")
        assert all(isinstance(e, SolverEvent) for e in log)

    def test_of_kind_filters(self):
        log = EventLog()
        log.record("a")
        log.record("b")
        log.record("a", where="x")
        kinds = log.of_kind("a")
        assert len(kinds) == 2
        assert kinds[1].where == "x"

    def test_extend_merges(self):
        log1, log2 = EventLog(), EventLog()
        log1.record("a")
        log2.record("b")
        log1.extend(log2)
        assert len(log1) == 2
        assert log1.has("b")

    def test_event_payload(self):
        log = EventLog()
        e = log.record("fault_injected", original=2.0, corrupted=3.0)
        assert e.data["original"] == 2.0
        assert e.data["corrupted"] == 3.0

    def test_clear(self):
        log = EventLog()
        log.record("a")
        log.clear()
        assert len(log) == 0

    def test_getitem(self):
        log = EventLog()
        log.record("first")
        log.record("second")
        assert log[0].kind == "first"
        assert log[-1].kind == "second"
