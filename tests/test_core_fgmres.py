"""Unit and integration tests for Flexible GMRES."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fgmres import FGMRESParameters, fgmres
from repro.core.gmres import gmres
from repro.core.status import SolverStatus
from repro.precond.jacobi import JacobiPreconditioner
from repro.precond.ilu import ILU0Preconditioner


class TestBasicBehaviour:
    def test_identity_inner_solver_matches_gmres(self, poisson_medium, rng):
        """With the identity 'preconditioner', FGMRES is plain (full) GMRES."""
        b = rng.standard_normal(poisson_medium.shape[0])
        flexible = fgmres(poisson_medium, b, inner_solver=None, tol=1e-10, max_outer=300)
        plain = gmres(poisson_medium, b, tol=1e-10, maxiter=300)
        assert flexible.converged
        assert abs(flexible.iterations - plain.iterations) <= 1
        np.testing.assert_allclose(flexible.x, plain.x, rtol=1e-6, atol=1e-8)

    def test_fixed_preconditioner_inner_solver(self, diag_dom_small, rng):
        b = rng.standard_normal(diag_dom_small.shape[0])
        jac = JacobiPreconditioner(diag_dom_small)
        result = fgmres(diag_dom_small, b, inner_solver=lambda q, j: jac.apply(q),
                        tol=1e-10, max_outer=100)
        assert result.converged
        np.testing.assert_allclose(diag_dom_small.matvec(result.x), b, rtol=1e-7, atol=1e-8)

    def test_changing_preconditioner(self, poisson_medium, rng):
        """The preconditioner may change every iteration (the 'flexible' part)."""
        b = rng.standard_normal(poisson_medium.shape[0])
        jac = JacobiPreconditioner(poisson_medium)
        ilu = ILU0Preconditioner(poisson_medium)

        def alternating(q, j):
            return jac.apply(q) if j % 2 == 0 else ilu.apply(q)

        result = fgmres(poisson_medium, b, inner_solver=alternating, tol=1e-9, max_outer=200)
        assert result.converged

    def test_gmres_inner_solver(self, poisson_medium, rng):
        """An inner GMRES solve as the preconditioner (the FT-GMRES structure)."""
        b = rng.standard_normal(poisson_medium.shape[0])

        def inner(q, j):
            return gmres(poisson_medium, q, tol=0.0, maxiter=10, restart=10).x

        result = fgmres(poisson_medium, b, inner_solver=inner, tol=1e-9, max_outer=50)
        assert result.converged
        # The nested iteration should use far fewer outer iterations than
        # unpreconditioned GMRES needs total iterations.
        assert result.iterations < 40

    def test_zero_rhs(self, poisson_small):
        result = fgmres(poisson_small, np.zeros(poisson_small.shape[0]), tol=1e-10)
        assert result.converged
        assert result.iterations == 0

    def test_nonfinite_inner_result_sanitized(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.shape[0])

        def broken(q, j):
            z = q.copy()
            if j == 1:
                z[0] = np.nan
            return z

        result = fgmres(poisson_small, b, inner_solver=broken, tol=1e-8, max_outer=80)
        assert result.events.count("inner_result_nonfinite") == 1
        assert result.converged

    def test_inner_callback_invoked(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.shape[0])
        seen = []
        fgmres(poisson_small, b, inner_solver=None, tol=1e-10, max_outer=20,
               inner_callback=lambda j, q, z: seen.append(j))
        assert seen == list(range(len(seen)))
        assert len(seen) >= 1

    def test_wrong_inner_length_rejected(self, poisson_small, rng):
        b = rng.standard_normal(poisson_small.shape[0])
        with pytest.raises(ValueError, match="length"):
            fgmres(poisson_small, b, inner_solver=lambda q, j: q[:3], max_outer=5)

    def test_invalid_max_outer(self, poisson_small):
        with pytest.raises(ValueError):
            fgmres(poisson_small, np.ones(poisson_small.shape[0]), max_outer=0)

    def test_invalid_orthogonalization(self, poisson_small):
        with pytest.raises(ValueError):
            fgmres(poisson_small, np.ones(poisson_small.shape[0]),
                   orthogonalization="qr")


class TestTrichotomy:
    def test_converged_branch(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        result = fgmres(poisson_medium, b, tol=1e-8, max_outer=300)
        assert result.status is SolverStatus.CONVERGED

    def test_happy_breakdown_branch(self):
        """Exact-solution inner solves give a happy breakdown on iteration 1."""
        A = np.diag([2.0, 5.0, 9.0])
        b = np.array([2.0, 5.0, 9.0])
        inv = np.diag(1.0 / np.diag(A))

        result = fgmres(A, b, inner_solver=lambda q, j: inv @ q, tol=1e-12, max_outer=3)
        assert result.status in (SolverStatus.HAPPY_BREAKDOWN, SolverStatus.CONVERGED)
        np.testing.assert_allclose(result.x, np.ones(3), rtol=1e-10)

    def test_rank_deficient_branch_reported_loudly(self):
        """Saad's Prop 2.2 case: zero inner solve makes H singular -> loud failure.

        The inner solver returns the zero vector, so A z_j = 0, every
        Hessenberg entry is zero, and h_{j+1,j} = 0 with a singular H block.
        FGMRES must report RANK_DEFICIENT instead of silently returning a
        wrong answer.
        """
        A = np.diag([1.0, 2.0, 3.0])
        b = np.array([1.0, 1.0, 1.0])
        result = fgmres(A, b, inner_solver=lambda q, j: np.zeros_like(q), max_outer=3)
        assert result.status is SolverStatus.RANK_DEFICIENT
        assert result.status.is_loud_failure
        assert result.events.has("rank_deficient")

    def test_max_iterations_branch(self, poisson_medium, rng):
        b = rng.standard_normal(poisson_medium.shape[0])
        result = fgmres(poisson_medium, b, tol=1e-14, max_outer=3)
        assert result.status is SolverStatus.MAX_ITERATIONS
        assert not result.status.is_loud_failure


class TestParameters:
    def test_replace(self):
        params = FGMRESParameters(tol=1e-4, max_outer=10)
        new = params.replace(max_outer=77)
        assert new.max_outer == 77 and new.tol == 1e-4
        assert params.max_outer == 10

    @pytest.mark.parametrize("policy", ["standard", "hybrid", "rank_revealing"])
    def test_lsq_policies(self, poisson_medium, rng, policy):
        b = rng.standard_normal(poisson_medium.shape[0])
        result = fgmres(poisson_medium, b, tol=1e-8, max_outer=300, lsq_policy=policy)
        assert result.converged

    @pytest.mark.parametrize("orth", ["mgs", "cgs", "cgs2"])
    def test_orthogonalization_variants(self, poisson_medium, rng, orth):
        b = rng.standard_normal(poisson_medium.shape[0])
        result = fgmres(poisson_medium, b, tol=1e-8, max_outer=300, orthogonalization=orth)
        assert result.converged


class TestNoDetectorFastPath:
    """With ``detector=None`` the outer orthogonalization skips the
    per-coefficient screening hooks entirely; the fast branch must be
    bit-for-bit identical to the hooked branch with a never-firing detector
    (mirror of the no-hook Arnoldi branch of plain GMRES)."""

    @pytest.mark.parametrize("orth", ["mgs", "cgs", "cgs2"])
    def test_bit_identical_to_never_firing_detector(self, poisson_medium, rng, orth):
        from repro.core.detectors import NullDetector
        from repro.precond.ssor import SSORPreconditioner

        b = rng.standard_normal(poisson_medium.shape[0])
        ssor = SSORPreconditioner(poisson_medium)
        inner = lambda q, j: ssor.apply(q)  # noqa: E731
        fast = fgmres(poisson_medium, b, inner_solver=inner, tol=1e-9,
                      max_outer=200, orthogonalization=orth, detector=None)
        hooked = fgmres(poisson_medium, b, inner_solver=inner, tol=1e-9,
                        max_outer=200, orthogonalization=orth, detector=NullDetector())
        assert fast.converged and hooked.converged
        assert fast.iterations == hooked.iterations
        np.testing.assert_array_equal(fast.x, hooked.x)
        np.testing.assert_array_equal(fast.history.as_array(), hooked.history.as_array())

    def test_detector_still_screens_when_attached(self, poisson_medium, rng):
        """Sanity: the slow branch still consults the detector."""
        from repro.core.detectors import HessenbergBoundDetector

        b = rng.standard_normal(poisson_medium.shape[0])
        # An absurdly small bound flags every coefficient.
        result = fgmres(poisson_medium, b, tol=1e-9, max_outer=5,
                        detector=HessenbergBoundDetector(1e-30), detector_response="flag")
        assert result.events.of_kind("fault_detected")
