"""The campaign service: job queue, scheduler, HTTP/JSONL API, streaming.

The acceptance bar (ISSUE 9): ≥3 concurrent campaigns submitted over HTTP,
the daemon SIGKILL-ed mid-run and restarted, and the final stored results
trial-identical to undisturbed serial runs with completed trials never
re-solved.  "Never re-solved" is checked two ways: the store itself raises
on duplicate successful records (so ``load_result`` succeeding is already
proof), and the per-run ``events.jsonl`` — append-only across daemon
restarts — must contain at most one ``trial_completed`` event per trial
index (a resumed replay emits lifecycle events only).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request

import pytest

from repro.api import run_campaign
from repro.results.events import Event, JsonlEventSink
from repro.results.store import RunStore, StoreLock
from repro.service.client import ServiceClient, ServiceError
from repro.service.scheduler import (CampaignScheduler, JobError, JobStore,
                                     job_fingerprint)
from repro.service.streams import (BroadcastSink, run_events_path, tail_jsonl)
from repro.specs import CampaignSpec, ServiceSpec, SpecError

# A tiny campaign: 3 fault classes x 7 locations = 21 trials, ~1 s serial.
BASE = dict(problem="poisson:8", inner_iterations=10, max_outer=30, stride=6)
#: Three *distinct* campaigns (different fingerprints) for concurrency tests;
#: stride 2 keeps each one running a few seconds.
TRIO = (dict(BASE, stride=2),
        dict(BASE, stride=2, inner_iterations=12),
        dict(BASE, stride=2, max_outer=40))

_SRC = os.path.join(os.path.dirname(__file__), "..", "src")


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join([_SRC, env.get("PYTHONPATH", "")])
    return env


def _start_daemon(store_dir, *, max_jobs=2, drain_grace=3.0):
    """Launch ``repro serve`` on an ephemeral port; returns (proc, client)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--store", str(store_dir),
         "--port", "0", "--max-jobs", str(max_jobs),
         "--drain-grace", str(drain_grace)],
        env=_env(), stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    path = os.path.join(str(store_dir), "_jobs", "daemon.json")
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise AssertionError(
                f"daemon exited rc={proc.returncode}: "
                f"{proc.stdout.read().decode()}")
        try:
            with open(path, "r", encoding="utf-8") as handle:
                info = json.load(handle)
            if info.get("pid") == proc.pid:
                return proc, ServiceClient(f"http://127.0.0.1:{info['port']}")
        except (FileNotFoundError, json.JSONDecodeError):
            pass
        time.sleep(0.05)
    proc.kill()
    raise AssertionError("daemon never wrote daemon.json")


def _stop_daemon(proc) -> None:
    if proc.poll() is None:
        proc.terminate()
        try:
            proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
    proc.stdout.close()


def _trial_event_counts(store: RunStore, run_id: str) -> dict[int, int]:
    """trial_completed events per trial index in a run's events.jsonl."""
    counts: dict[int, int] = {}
    try:
        with open(run_events_path(store, run_id), "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail from a kill; fine
                if event.get("kind") == "trial_completed":
                    index = event.get("trial_index")
                    counts[index] = counts.get(index, 0) + 1
    except FileNotFoundError:
        pass
    return counts


# ---------------------------------------------------------------------- #
# specs and fingerprints
# ---------------------------------------------------------------------- #
class TestServiceSpec:
    def test_roundtrip_and_defaults(self):
        spec = ServiceSpec(port=0, max_jobs=4)
        assert ServiceSpec.from_dict(spec.to_dict()) == spec
        assert spec.to_dict() == {"port": 0, "max_jobs": 4}  # compact
        assert ServiceSpec().host == "127.0.0.1"

    @pytest.mark.parametrize("bad", [
        {"host": ""}, {"port": -1}, {"port": 70000}, {"max_jobs": 0},
        {"poll_interval": 0.0}, {"drain_grace": -1.0}, {"bogus": 1},
    ])
    def test_validation(self, bad):
        with pytest.raises(SpecError):
            ServiceSpec.from_dict(bad)

    def test_coerce(self):
        assert ServiceSpec.coerce(None) == ServiceSpec()
        assert ServiceSpec.coerce({"port": 0}, max_jobs=3).max_jobs == 3
        with pytest.raises(SpecError):
            ServiceSpec.coerce(42)


class TestJobFingerprint:
    def test_exec_knobs_do_not_change_identity(self):
        a = CampaignSpec.coerce(BASE)
        b = CampaignSpec.coerce(dict(BASE, exec={"workers": 4,
                                                 "backend": "process"}))
        assert job_fingerprint(a) == job_fingerprint(b)

    def test_problem_is_part_of_identity(self):
        a = CampaignSpec.coerce(BASE)
        b = CampaignSpec.coerce(dict(BASE, problem="poisson:30"))
        assert job_fingerprint(a) != job_fingerprint(b)

    def test_physics_is_part_of_identity(self):
        a = CampaignSpec.coerce(BASE)
        b = CampaignSpec.coerce(dict(BASE, stride=2))
        assert job_fingerprint(a) != job_fingerprint(b)

    def test_problem_required(self):
        with pytest.raises(SpecError, match="problem"):
            job_fingerprint(CampaignSpec())


# ---------------------------------------------------------------------- #
# the durable job store
# ---------------------------------------------------------------------- #
class TestJobStore:
    def test_submit_dedupes_onto_one_job(self, tmp_path):
        jobs = JobStore(tmp_path)
        first, created = jobs.submit(BASE)
        again, created2 = jobs.submit(CampaignSpec.coerce(BASE))
        assert created and not created2
        assert again.job_id == first.job_id
        assert again.submissions == 2
        assert again.run_id == f"job-{first.job_id}"
        assert len(jobs.list()) == 1

    def test_resubmit_requeues_failed_and_cancelled(self, tmp_path):
        jobs = JobStore(tmp_path)
        record, _ = jobs.submit(BASE)
        jobs.update(record.job_id, status="failed", error="boom",
                    finished_at="t")
        requeued, created = jobs.submit(BASE)
        assert not created
        assert requeued.status == "queued"
        assert requeued.error is None and requeued.finished_at is None

    def test_resubmit_leaves_completed_alone(self, tmp_path):
        jobs = JobStore(tmp_path)
        record, _ = jobs.submit(BASE)
        jobs.update(record.job_id, status="completed")
        again, _ = jobs.submit(BASE)
        assert again.status == "completed"

    def test_read_unknown_and_update_unknown_field(self, tmp_path):
        jobs = JobStore(tmp_path)
        with pytest.raises(JobError, match="no job"):
            jobs.read("0" * 16)
        record, _ = jobs.submit(BASE)
        with pytest.raises(JobError, match="unknown job record field"):
            jobs.update(record.job_id, bogus=1)

    def test_list_skips_non_job_files(self, tmp_path):
        jobs = JobStore(tmp_path)
        jobs.submit(BASE)
        for name in ("daemon.json", ".jobs.lock", "junk.txt"):
            with open(os.path.join(jobs.dir, name), "w") as handle:
                handle.write("{}")
        assert len(jobs.list()) == 1

    def test_request_cancel_is_flag_only_and_terminal_noop(self, tmp_path):
        jobs = JobStore(tmp_path)
        record, _ = jobs.submit(BASE)
        flagged = jobs.request_cancel(record.job_id)
        assert flagged.cancel_requested and flagged.status == "queued"
        jobs.update(record.job_id, status="completed",
                    cancel_requested=False)
        done = jobs.request_cancel(record.job_id)
        assert done.status == "completed" and not done.cancel_requested


class TestStoreLock:
    def test_mutual_exclusion_and_release(self, tmp_path):
        held = StoreLock(tmp_path)
        assert held.acquire()
        other = StoreLock(tmp_path)
        assert other.acquire(blocking=False) is False
        held.release()
        assert other.acquire(blocking=False) is True
        other.release()

    def test_timeout_waits_then_wins(self, tmp_path):
        held = StoreLock(tmp_path)
        held.acquire()
        timer = threading.Timer(0.2, held.release)
        timer.start()
        try:
            other = StoreLock(tmp_path)
            assert other.acquire(timeout=5.0) is True
            other.release()
        finally:
            timer.cancel()

    def test_context_manager_and_reentry_guard(self, tmp_path):
        lock = StoreLock(tmp_path)
        with lock:
            from repro.results.store import RunStoreError

            with pytest.raises(RunStoreError, match="already held"):
                lock.acquire()
        assert lock.acquire(blocking=False)
        lock.release()


# ---------------------------------------------------------------------- #
# satellites: RunStore.list_runs, JsonlEventSink flush
# ---------------------------------------------------------------------- #
class TestListRuns:
    def test_empty_store(self, tmp_path):
        assert RunStore(tmp_path).list_runs() == []

    def test_reports_progress_and_status(self, tmp_path):
        store = RunStore(tmp_path)
        run_campaign(spec=BASE, store=store, run_id="done")
        rows = store.list_runs()
        assert [row["run_id"] for row in rows] == ["done"]
        row = rows[0]
        assert row["status"] == "complete"
        assert row["trials_done"] == row["total_trials"] == 21
        assert row["problem_name"] == "poisson-8x8"
        assert row["shards"] == 0 and row["spec_hash"]

    def test_corrupt_run_does_not_hide_the_rest(self, tmp_path):
        store = RunStore(tmp_path)
        run_campaign(spec=BASE, store=store, run_id="good")
        os.makedirs(store.run_path("bad"))
        with open(os.path.join(store.run_path("bad"), "manifest.json"),
                  "w") as handle:
            handle.write("{not json")
        rows = {row["run_id"]: row for row in store.list_runs()}
        assert rows["bad"]["status"] == "corrupt"
        assert rows["good"]["status"] == "complete"


class TestJsonlFlushParam:
    def test_default_flushes_per_event(self, tmp_path):
        path = os.path.join(str(tmp_path), "events.jsonl")
        sink = JsonlEventSink(path)
        try:
            sink.emit(Event("trial_completed", data={"done": 1}))
            with open(path) as handle:  # visible before close
                assert len(handle.readlines()) == 1
        finally:
            sink.close()

    def test_flush_false_buffers_until_close(self, tmp_path):
        path = os.path.join(str(tmp_path), "events.jsonl")
        sink = JsonlEventSink(path, flush=False)
        sink.emit(Event("trial_completed", data={"done": 1}))
        assert os.path.getsize(path) == 0  # buffered
        sink.close()
        with open(path) as handle:
            assert len(handle.readlines()) == 1

    def test_registry_factory_coerces_flush_strings(self, tmp_path):
        from repro.registry import resolve_sink

        sink = resolve_sink({"name": "jsonl",
                             "path": os.path.join(str(tmp_path), "e.jsonl"),
                             "flush": "false"})
        try:
            assert sink.flush is False
        finally:
            sink.close()
        sink = resolve_sink(f"jsonl:{tmp_path}/f.jsonl")
        try:
            assert sink.flush is True
        finally:
            sink.close()


# ---------------------------------------------------------------------- #
# streams: broadcast fan-out + JSONL tailing
# ---------------------------------------------------------------------- #
class TestBroadcastSink:
    def test_fan_out_to_subscribers(self):
        bus = BroadcastSink()
        a, b = bus.subscribe(), bus.subscribe()
        bus.emit(Event("job_update", data={"n": 1}))
        bus.emit(Event("job_update", data={"n": 2}))
        bus.close()
        assert [e.data["n"] for e in a] == [1, 2]
        assert [e.data["n"] for e in b] == [1, 2]

    def test_slow_subscriber_drops_instead_of_blocking(self):
        bus = BroadcastSink()
        sub = bus.subscribe(maxsize=2)
        for n in range(5):
            bus.emit(Event("job_update", data={"n": n}))
        assert sub.dropped == 3
        bus.close()
        assert [e.data["n"] for e in sub] == [0, 1]

    def test_unsubscribe_stops_delivery(self):
        bus = BroadcastSink()
        sub = bus.subscribe()
        sub.close()
        bus.emit(Event("job_update"))
        assert bus.subscribers == 0
        assert list(sub) == []

    def test_subscribe_after_close_is_immediately_done(self):
        bus = BroadcastSink()
        bus.close()
        assert list(bus.subscribe()) == []

    def test_registered_as_sink(self):
        from repro.registry import resolve_sink

        bus = resolve_sink("broadcast:8")
        assert isinstance(bus, BroadcastSink)
        assert bus.default_maxsize == 8
        bus.close()


class TestTailJsonl:
    def test_replays_then_follows_live_appends(self, tmp_path):
        path = os.path.join(str(tmp_path), "events.jsonl")
        with open(path, "w") as handle:
            handle.write('{"n": 1}\n{"n": 2}\n')
        seen: list[dict] = []
        done = threading.Event()

        def _consume():
            for row in tail_jsonl(path, poll_interval=0.01,
                                  stop=lambda: len(seen) >= 3):
                seen.append(row)
            done.set()

        thread = threading.Thread(target=_consume, daemon=True)
        thread.start()
        time.sleep(0.1)
        with open(path, "a") as handle:
            handle.write('{"n": 3}\n')
        assert done.wait(timeout=30)
        assert [row["n"] for row in seen] == [1, 2, 3]

    def test_stop_drains_pending_lines_first(self, tmp_path):
        path = os.path.join(str(tmp_path), "events.jsonl")
        with open(path, "w") as handle:
            handle.write('{"n": 1}\n{"n": 2}\n')
        rows = list(tail_jsonl(path, stop=lambda: True))
        assert [row["n"] for row in rows] == [1, 2]

    def test_missing_file_and_partial_tail(self, tmp_path):
        path = os.path.join(str(tmp_path), "nope.jsonl")
        assert list(tail_jsonl(path, stop=lambda: True)) == []
        with open(path, "w") as handle:
            handle.write('{"n": 1}\n{"torn')  # no newline: stays pending
        rows = list(tail_jsonl(path, stop=lambda: True))
        assert [row["n"] for row in rows] == [1]

    def test_corrupt_complete_line_is_skipped(self, tmp_path):
        path = os.path.join(str(tmp_path), "events.jsonl")
        with open(path, "w") as handle:
            handle.write('{"n": 1}\nnot-json\n{"n": 2}\n')
        rows = list(tail_jsonl(path, stop=lambda: True))
        assert [row["n"] for row in rows] == [1, 2]


# ---------------------------------------------------------------------- #
# the scheduler, in-process (no HTTP)
# ---------------------------------------------------------------------- #
def _drive(scheduler, jobs, job_ids, *, timeout=240):
    """Tick until every job is terminal; returns the final records."""
    deadline = time.monotonic() + timeout
    while True:
        scheduler.tick()
        records = [jobs.read(job_id) for job_id in job_ids]
        if all(record.terminal for record in records):
            return records
        if time.monotonic() > deadline:
            raise AssertionError(
                f"jobs never finished: "
                f"{[(r.job_id, r.status) for r in records]}")
        time.sleep(0.05)


class TestCampaignScheduler:
    def test_distinct_campaigns_complete_trial_identical_to_serial(
            self, tmp_path):
        """Satellite: N distinct campaigns under max_jobs=2 == serial runs."""
        store = RunStore(tmp_path)
        jobs = JobStore(store)
        scheduler = CampaignScheduler(jobs, max_jobs=2)
        ids = [jobs.submit(spec)[0].job_id for spec in TRIO]
        records = _drive(scheduler, jobs, ids)
        assert [record.status for record in records] == ["completed"] * 3
        assert scheduler.running == 0
        for spec, record in zip(TRIO, records):
            serial = run_campaign(spec=dict(spec, exec={"backend": "serial"}))
            stored = store.load_result(record.run_id)
            assert stored.trials == serial.trials

    def test_failing_job_records_the_error(self, tmp_path):
        jobs = JobStore(tmp_path)
        record, _ = jobs.submit(dict(BASE, problem="no-such-problem:9"))
        scheduler = CampaignScheduler(jobs, max_jobs=1)
        (final,) = _drive(scheduler, jobs, [record.job_id])
        assert final.status == "failed"
        assert "no-such-problem" in final.error

    def test_cancel_queued_job_never_launches(self, tmp_path):
        jobs = JobStore(tmp_path)
        record, _ = jobs.submit(BASE)
        jobs.request_cancel(record.job_id)
        scheduler = CampaignScheduler(jobs, max_jobs=1)
        scheduler.tick()
        final = jobs.read(record.job_id)
        assert final.status == "cancelled"
        assert scheduler.running == 0

    def test_recover_requeues_running_orphans(self, tmp_path):
        jobs = JobStore(tmp_path)
        record, _ = jobs.submit(BASE)
        jobs.update(record.job_id, status="running", pid=None)
        scheduler = CampaignScheduler(jobs, max_jobs=1)
        scheduler.recover()
        assert jobs.read(record.job_id).status == "queued"


# ---------------------------------------------------------------------- #
# the daemon over HTTP (subprocess)
# ---------------------------------------------------------------------- #
class TestServiceHTTP:
    def test_e2e_sigkill_restart_trial_identical(self, tmp_path):
        """The acceptance test: 3 concurrent jobs, SIGKILL, restart, resume."""
        store = RunStore(tmp_path)
        proc, client = _start_daemon(tmp_path, max_jobs=2)
        try:
            records = [client.submit(spec) for spec in TRIO]
            job_ids = [record["job_id"] for record in records]
            assert len(set(job_ids)) == 3
            # let some (not all) trials land, then murder the daemon
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                rows = client.jobs()
                done = sum((row.get("progress") or {}).get("trials_done") or 0
                           for row in rows)
                if done >= 3:
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("no trials completed before the kill")
            os.kill(proc.pid, signal.SIGKILL)
            proc.wait()
        finally:
            _stop_daemon(proc)
        statuses = {record.job_id: record.status
                    for record in JobStore(store).list()}
        assert set(statuses) == set(job_ids)
        assert statuses != {job_id: "completed" for job_id in job_ids}, \
            "daemon died after everything finished; the test raced"

        # restart: recovery requeues the casualties, jobs run to completion
        proc, client = _start_daemon(tmp_path, max_jobs=2)
        try:
            for job_id in job_ids:
                final = client.wait(job_id, timeout=240)
                assert final["status"] == "completed"
        finally:
            _stop_daemon(proc)
        for spec, job_id in zip(TRIO, job_ids):
            serial = run_campaign(spec=dict(spec, exec={"backend": "serial"}))
            # load_result itself proves no duplicate successful records
            stored = store.load_result(f"job-{job_id}")
            assert stored.trials == serial.trials
            counts = _trial_event_counts(store, f"job-{job_id}")
            resolved_twice = {i: n for i, n in counts.items() if n > 1}
            assert not resolved_twice, \
                f"trials re-solved after restart: {resolved_twice}"

    def test_sigterm_drains_requeues_and_restart_resumes(self, tmp_path):
        """Satellite: graceful shutdown re-queues; restart = zero re-solves."""
        store = RunStore(tmp_path)
        spec = dict(BASE, stride=2)
        proc, client = _start_daemon(tmp_path, max_jobs=1)
        try:
            record = client.submit(spec)
            job_id = record["job_id"]
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                progress = client.job(job_id).get("progress") or {}
                if (progress.get("trials_done") or 0) >= 2:
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("job never made progress")
            proc.terminate()
            rc = proc.wait(timeout=60)
            assert rc == -signal.SIGTERM  # re-delivered after the drain
        finally:
            _stop_daemon(proc)
        requeued = JobStore(store).read(job_id)
        assert requeued.status == "queued"  # drained, not lost
        checkpointed = store.completed_indices(f"job-{job_id}")
        assert checkpointed  # something durable survived
        assert not os.path.exists(
            os.path.join(str(tmp_path), "_jobs", "daemon.json"))

        proc, client = _start_daemon(tmp_path, max_jobs=1)
        try:
            final = client.wait(job_id, timeout=240)
            assert final["status"] == "completed"
        finally:
            _stop_daemon(proc)
        serial = run_campaign(spec=dict(spec, exec={"backend": "serial"}))
        assert store.load_result(f"job-{job_id}").trials == serial.trials
        counts = _trial_event_counts(store, f"job-{job_id}")
        assert all(n == 1 for n in counts.values())
        # the drained trials were never re-solved: their single event
        # predates the restart
        assert set(counts) >= checkpointed

    def test_concurrent_submissions_race_to_one_job(self, tmp_path):
        """Satellite: two clients POSTing the same spec get the same job."""
        proc, client = _start_daemon(tmp_path, max_jobs=1)
        try:
            results: list[dict] = []
            barrier = threading.Barrier(2)

            def _post():
                barrier.wait()
                results.append(ServiceClient(client.url).submit(BASE))

            threads = [threading.Thread(target=_post) for _ in range(2)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert len(results) == 2
            assert results[0]["job_id"] == results[1]["job_id"]
            rows = client.jobs()
            assert len(rows) == 1
            final = client.wait(results[0]["job_id"], timeout=240)
            assert final["submissions"] == 2
            assert final["status"] == "completed"
        finally:
            _stop_daemon(proc)

    def test_http_error_paths(self, tmp_path):
        proc, client = _start_daemon(tmp_path)
        try:
            health = client.health()
            assert health["status"] == "ok" and health["max_jobs"] == 2

            with pytest.raises(ServiceError) as err:
                client.submit({"problem": "poisson:8", "bogus_field": 1})
            assert err.value.status == 400

            with pytest.raises(ServiceError) as err:
                client.submit({"stride": 3})  # no problem: cannot run remote
            assert err.value.status == 400
            assert "problem" in str(err.value)

            request = urllib.request.Request(
                client.url + "/jobs", data=b"{not json", method="POST",
                headers={"Content-Type": "application/json"})
            with pytest.raises(urllib.error.HTTPError) as raw:
                urllib.request.urlopen(request, timeout=30)
            assert raw.value.code == 400

            with pytest.raises(ServiceError) as err:
                client.job("feedfeedfeedfeed")
            assert err.value.status == 404
            with pytest.raises(ServiceError) as err:
                client.cancel("feedfeedfeedfeed")
            assert err.value.status == 404

            # a failing job: 409 on result, error text in the record
            record = client.submit(dict(BASE, problem="no-such-problem:9"))
            final = client.wait(record["job_id"], timeout=120)
            assert final["status"] == "failed"
            assert "no-such-problem" in final["error"]
            with pytest.raises(ServiceError) as err:
                client.result(final["job_id"])
            assert err.value.status == 409
        finally:
            _stop_daemon(proc)

    def test_cancel_drains_then_resubmit_finishes(self, tmp_path):
        store = RunStore(tmp_path)
        spec = dict(BASE, stride=1)  # long enough to cancel mid-flight
        proc, client = _start_daemon(tmp_path, max_jobs=1)
        try:
            record = client.submit(spec)
            job_id = record["job_id"]
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                progress = client.job(job_id).get("progress") or {}
                if (progress.get("trials_done") or 0) >= 1:
                    break
                time.sleep(0.05)
            cancelled = client.cancel(job_id)
            assert cancelled["cancel_requested"] or \
                cancelled["status"] in ("cancelled", "completed")
            final = client.wait(job_id, timeout=120)
            assert final["status"] in ("cancelled", "completed")
            if final["status"] == "cancelled":
                done = len(store.completed_indices(f"job-{job_id}"))
                total = store.manifest(f"job-{job_id}").total_trials
                assert done < total  # actually stopped early
                resubmitted = client.submit(spec)
                assert resubmitted["status"] == "queued"
                assert resubmitted["submissions"] == 2
                final = client.wait(job_id, timeout=240)
                assert final["status"] == "completed"
            serial = run_campaign(spec=dict(spec, exec={"backend": "serial"}))
            assert store.load_result(f"job-{job_id}").trials == serial.trials
        finally:
            _stop_daemon(proc)

    def test_event_stream_replays_completed_run(self, tmp_path):
        proc, client = _start_daemon(tmp_path)
        try:
            record = client.submit(BASE)
            job_id = record["job_id"]
            events = list(client.events(job_id))  # blocks until terminal
            kinds = [event["kind"] for event in events]
            assert kinds.count("campaign_started") == 1
            assert kinds.count("trial_completed") == 21
            assert kinds[-1] == "job_update"
            assert events[-1]["data"]["status"] == "completed"
            # a second stream replays the full history from the file
            replay = list(client.events(job_id))
            assert [e["kind"] for e in replay].count("trial_completed") == 21
        finally:
            _stop_daemon(proc)

    def test_service_events_bus_sees_job_lifecycle(self, tmp_path):
        proc, client = _start_daemon(tmp_path)
        try:
            seen: list[dict] = []

            def _listen():
                for event in client.service_events():
                    seen.append(event)
                    statuses = [e["data"].get("status") for e in seen
                                if e["kind"] == "job_update"]
                    if "completed" in statuses:
                        return

            listener = threading.Thread(target=_listen, daemon=True)
            listener.start()
            time.sleep(0.3)
            client.submit(BASE)
            listener.join(timeout=120)
            assert not listener.is_alive()
            statuses = [e["data"]["status"] for e in seen
                        if e["kind"] == "job_update"]
            assert "queued" in statuses or "running" in statuses
            assert "completed" in statuses
        finally:
            _stop_daemon(proc)

    def test_second_daemon_on_same_store_is_refused(self, tmp_path):
        proc, client = _start_daemon(tmp_path)
        try:
            second = subprocess.run(
                [sys.executable, "-m", "repro", "serve", "--store",
                 str(tmp_path), "--port", "0"],
                env=_env(), timeout=60, capture_output=True)
            assert second.returncode == 1
            assert b"already serves" in second.stderr
        finally:
            _stop_daemon(proc)


# ---------------------------------------------------------------------- #
# the CLI surface
# ---------------------------------------------------------------------- #
class TestServiceCLI:
    def test_runs_subcommand_lists_the_store(self, tmp_path):
        run_campaign(spec=BASE, store=RunStore(tmp_path), run_id="cli-run")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "runs", "--store", str(tmp_path)],
            env=_env(), timeout=120, capture_output=True, text=True)
        assert proc.returncode == 0
        assert "cli-run" in proc.stdout
        assert "21/21" in proc.stdout
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "runs", "--store", str(tmp_path),
             "--json"],
            env=_env(), timeout=120, capture_output=True, text=True)
        rows = json.loads(proc.stdout)
        assert rows[0]["run_id"] == "cli-run"

    def test_experiment_commands_still_parse(self):
        """The service dispatch must not swallow the experiment CLI."""
        from repro.experiments.runner import build_parser

        args = build_parser().parse_args(["table1", "--scale", "tiny"])
        assert args.experiments == ["table1"]

    def test_api_serve_facade_exists(self):
        from repro import api

        assert callable(api.serve)
        assert api.ServiceSpec is ServiceSpec
