"""Cross-tier equivalence suite for the pluggable sparse kernel engines.

The contract under test (see :mod:`repro.sparse.kernels`):

* the ``numpy`` tier is the bit-exact reference and the default;
* ``rmatvec``/``rmatmat`` are bit-identical across tiers (scatter-add in
  index order, same as ``np.add.at``);
* ``matvec``/``matmat``/``trisolve`` on compiled tiers agree with the
  reference to ``<= 1e-14`` relative;
* campaign runs are trial-identical across tiers: statuses and iteration
  counts match exactly, residual norms to 1e-6 relative (restarted
  iteration amplifies the per-kernel rounding differences).

The ``numba`` tier is exercised only where numba is importable; its tests
vanish as clean skips otherwise.
"""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

import repro.sparse.kernels as kernels_mod
from repro.gallery.poisson import poisson2d
from repro.gallery.problems import poisson_problem
from repro.registry import RegistryError, names, resolve_kernels
from repro.sparse.csr import CSRMatrix
from repro.sparse.kernels import (
    KERNEL_CHOICES,
    KERNEL_TIERS,
    KernelEngine,
    NumpyEngine,
    as_kernel_vector,
    available_kernels,
    default_kernels,
    effective_kernels,
    get_engine,
    have_numba,
    have_scipy,
    resolve_engine,
)
from repro.sparse.trisolve import TriangularFactor
from repro.specs import CampaignSpec, ExecutionSpec

needs_scipy = pytest.mark.skipif(not have_scipy(), reason="scipy not installed")
needs_numba = pytest.mark.skipif(not have_numba(), reason="numba not installed")

#: The compiled tiers present in this environment (empty → tests skip).
COMPILED_TIERS = [t for t in ("scipy", "numba") if t in available_kernels()]

#: Bit-identical kernels across every tier.
EXACT_KERNELS = ("rmatvec", "rmatmat")
#: Kernels allowed the stated relative tolerance on compiled tiers.
TOL_KERNELS = ("matvec", "matmat")
CONTRACT_RTOL = 1e-14


def assert_contract(kind: str, ref: np.ndarray, got: np.ndarray,
                    bound: np.ndarray | None = None) -> None:
    """Assert one kernel's half of the equivalence contract.

    ``bound`` is the componentwise magnitude sum ``|A| @ |x|`` — the natural
    scale of each row's reduction.  Rows that cancel catastrophically have
    ``ref`` near zero while the reduction error scales with ``bound``, so the
    relative contract is stated against the reduction magnitude, not the
    (possibly vanishing) result.
    """
    if kind in EXACT_KERNELS:
        np.testing.assert_array_equal(got, ref)
    elif bound is not None:
        err = np.abs(got - ref)
        assert np.all(err <= CONTRACT_RTOL * bound), \
            f"{kind}: max err {err.max():.3e} exceeds contract"
    else:
        np.testing.assert_allclose(got, ref, rtol=CONTRACT_RTOL, atol=0.0)


# ----------------------------------------------------------------------------
# strategies: CSR matrices with empty rows, duplicates-free sorted layout
# ----------------------------------------------------------------------------

finite_floats = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False,
                          allow_infinity=False)


@st.composite
def csr_matrices(draw, max_dim=12):
    """Random CSR matrices, including empty rows and fully-empty matrices."""
    rows = draw(st.integers(min_value=1, max_value=max_dim))
    cols = draw(st.integers(min_value=1, max_value=max_dim))
    mask = draw(hnp.arrays(np.bool_, (rows, cols), elements=st.booleans()))
    dense = draw(hnp.arrays(np.float64, (rows, cols), elements=finite_floats))
    dense = np.where(mask, dense, 0.0)
    return CSRMatrix.from_dense(dense)


@st.composite
def triangular_factors(draw, max_dim=12):
    """Random well-conditioned lower/upper triangular factors."""
    n = draw(st.integers(min_value=1, max_value=max_dim))
    lower = draw(st.booleans())
    unit = draw(st.booleans())
    mask = draw(hnp.arrays(np.bool_, (n, n), elements=st.booleans()))
    dense = draw(hnp.arrays(np.float64, (n, n), elements=finite_floats))
    dense = np.where(mask, dense, 0.0)
    dense = np.tril(dense, k=-1) if lower else np.triu(dense, k=1)
    # Diagonal dominance keeps the substitution well-conditioned, so the
    # cross-tier comparison measures kernel rounding, not error growth.
    diag = 1.0 + np.abs(dense).sum(axis=1)
    A = CSRMatrix.from_dense(dense + np.diag(diag))
    return TriangularFactor.from_csr(A, part="lower" if lower else "upper",
                                     unit_diagonal=unit)


@pytest.fixture
def small_csr(rng) -> CSRMatrix:
    dense = rng.standard_normal((20, 16))
    dense[np.abs(dense) < 0.8] = 0.0
    dense[3, :] = 0.0  # an empty row
    dense[:, 5] = 0.0  # an empty column
    return CSRMatrix.from_dense(dense)


# ----------------------------------------------------------------------------
# tier discovery, selection and registry surface
# ----------------------------------------------------------------------------

class TestTierSelection:
    def test_numpy_is_default(self, monkeypatch):
        monkeypatch.delenv(kernels_mod.KERNELS_ENV_VAR, raising=False)
        assert default_kernels() == "numpy"
        assert effective_kernels() == "numpy"
        assert CSRMatrix.identity(3).engine_name == "numpy"

    def test_available_starts_with_reference(self):
        tiers = available_kernels()
        assert tiers[0] == "numpy"
        assert set(tiers) <= set(KERNEL_TIERS)

    @needs_scipy
    def test_scipy_available_here(self):
        assert "scipy" in available_kernels()

    def test_numba_availability_is_consistent(self):
        assert ("numba" in available_kernels()) == have_numba()

    def test_get_engine_rejects_auto_and_unknown(self):
        with pytest.raises(ValueError, match="unknown kernel tier"):
            get_engine("auto")
        with pytest.raises(ValueError, match="unknown kernel tier"):
            get_engine("fortran")

    def test_get_engine_singletons(self):
        assert get_engine("numpy") is get_engine("numpy")
        assert isinstance(get_engine("numpy"), NumpyEngine)

    @needs_scipy
    def test_auto_resolves_to_best_available(self):
        expected = "numba" if have_numba() else "scipy"
        assert resolve_engine("auto").name == expected
        assert effective_kernels("auto") == expected

    def test_resolve_engine_passthrough_and_errors(self):
        eng = get_engine("numpy")
        assert resolve_engine(eng) is eng
        with pytest.raises(TypeError, match="tier name"):
            resolve_engine(3.14)

    def test_effective_kernels_precedence(self, monkeypatch):
        # spec < REPRO_KERNELS < explicit flag, "numpy" when all unset.
        monkeypatch.delenv(kernels_mod.KERNELS_ENV_VAR, raising=False)
        assert effective_kernels(None) == "numpy"
        assert effective_kernels("numpy") == "numpy"
        monkeypatch.setenv(kernels_mod.KERNELS_ENV_VAR, "numpy")
        assert effective_kernels("auto") == "numpy"
        if have_scipy():
            monkeypatch.setenv(kernels_mod.KERNELS_ENV_VAR, "scipy")
            assert effective_kernels("numpy") == "scipy"
            assert effective_kernels("scipy", flag="numpy") == "numpy"
        monkeypatch.delenv(kernels_mod.KERNELS_ENV_VAR, raising=False)
        with pytest.raises(ValueError, match="unknown kernel tier"):
            effective_kernels("cuda")

    def test_graceful_numba_detection(self, monkeypatch):
        """Without numba the tier is cleanly absent with an install hint."""
        if have_numba():
            pytest.skip("numba installed: absence path not reachable")
        monkeypatch.delenv(kernels_mod.KERNELS_ENV_VAR, raising=False)
        assert "numba" not in available_kernels()
        with pytest.raises(ValueError, match=r"\[accel\]"):
            get_engine("numba")
        with pytest.raises(ValueError, match=r"\[accel\]"):
            effective_kernels("numba")


class TestRegistryNamespace:
    def test_tiers_registered(self):
        assert {"numpy", "scipy", "numba", "auto"} <= set(names("kernels"))

    def test_resolve_kernels_returns_engine(self):
        eng = resolve_kernels("numpy")
        assert isinstance(eng, KernelEngine)
        assert eng.name == "numpy"

    @needs_scipy
    def test_resolve_kernels_scipy(self):
        assert resolve_kernels("scipy").name == "scipy"

    def test_resolve_kernels_passthrough_and_default(self, monkeypatch):
        eng = get_engine("numpy")
        assert resolve_kernels(eng) is eng
        monkeypatch.delenv(kernels_mod.KERNELS_ENV_VAR, raising=False)
        assert resolve_kernels(None).name == "numpy"

    def test_missing_tier_raises_registry_error(self):
        if have_numba():
            pytest.skip("numba installed: absence path not reachable")
        with pytest.raises(RegistryError, match=r"\[accel\]"):
            resolve_kernels("numba")


class TestSpecIntegration:
    def test_exec_spec_accepts_and_validates(self):
        assert ExecutionSpec().kernels is None
        assert ExecutionSpec(kernels="scipy").kernels == "scipy"
        with pytest.raises(ValueError, match="kernels"):
            ExecutionSpec(kernels="cython")

    def test_exec_spec_json_round_trip(self):
        spec = CampaignSpec(exec=ExecutionSpec(kernels="scipy"))
        blob = spec.to_json()
        assert json.loads(blob)["exec"]["kernels"] == "scipy"
        assert CampaignSpec.from_json(blob).exec.kernels == "scipy"

    def test_kernels_excluded_from_fingerprint(self):
        from repro.results.store import campaign_fingerprint

        a = CampaignSpec(exec=ExecutionSpec(kernels="scipy"))
        b = CampaignSpec(exec=ExecutionSpec(kernels=None))
        assert campaign_fingerprint(a, "poisson") == campaign_fingerprint(b, "poisson")


# ----------------------------------------------------------------------------
# engine attachment: construction, with_engine, pickling, zero-copy views
# ----------------------------------------------------------------------------

class TestEngineAttachment:
    def test_with_engine_same_is_identity(self, small_csr):
        # (small_csr carries the ambient default tier, whatever it is.)
        assert small_csr.with_engine(small_csr.engine_name) is small_csr

    @needs_scipy
    def test_with_engine_shares_arrays(self, small_csr):
        base = small_csr.with_engine("numpy")
        other = base.with_engine("scipy")
        assert other is not base
        assert other.engine_name == "scipy"
        assert base.engine_name == "numpy"
        for attr in ("indptr", "indices", "data"):
            assert np.shares_memory(getattr(other, attr), getattr(base, attr))

    @needs_scipy
    def test_scipy_view_is_zero_copy(self, small_csr):
        A = small_csr.with_engine("scipy")
        A.matvec(np.ones(A.shape[1]))  # builds and caches the view
        view, _ = A._kernel_cache["scipy"]
        assert np.shares_memory(view.data, A.data)
        assert np.shares_memory(view.indices, A.indices)
        assert np.shares_memory(view.indptr, A.indptr)

    @pytest.mark.parametrize("tier", ["numpy"] + COMPILED_TIERS)
    def test_csr_pickle_round_trip(self, small_csr, tier):
        A = small_csr.with_engine(tier)
        x = np.linspace(-1.0, 1.0, A.shape[1])
        expect = A.matvec(x)
        B = pickle.loads(pickle.dumps(A))
        assert B.engine_name == tier
        np.testing.assert_array_equal(B.matvec(x), expect)

    @pytest.mark.parametrize("tier", ["numpy"] + COMPILED_TIERS)
    def test_factor_pickle_round_trip(self, tier):
        F = TriangularFactor.from_csr(poisson2d(5), part="lower",
                                      engine=tier)
        b = np.linspace(1.0, 2.0, F.n)
        expect = F.solve(b)
        G = pickle.loads(pickle.dumps(F))
        assert G.engine_name == tier
        np.testing.assert_array_equal(G.solve(b), expect)

    def test_factor_inherits_matrix_engine(self):
        for tier in ["numpy"] + COMPILED_TIERS:
            A = poisson2d(4).with_engine(tier)
            F = TriangularFactor.from_csr(A, part="lower")
            assert F.engine_name == tier

    @needs_scipy
    def test_ilu_factors_inherit_engine(self):
        from repro.precond.ilu import ILU0Preconditioner

        M = ILU0Preconditioner(poisson2d(5).with_engine("scipy"))
        L, U = M.factors
        assert L.engine_name == "scipy"
        assert U.engine_name == "scipy"


# ----------------------------------------------------------------------------
# cross-tier kernel equivalence (hypothesis + directed edge cases)
# ----------------------------------------------------------------------------

@pytest.mark.parametrize("tier", COMPILED_TIERS)
class TestCrossTierProducts:
    @given(A=csr_matrices())
    @settings(max_examples=40, deadline=None)
    def test_matvec_and_rmatvec(self, tier, A):
        eng = get_engine(tier)
        x = np.linspace(-1.0, 1.0, A.shape[1])
        xt = np.linspace(-1.0, 1.0, A.shape[0])
        bound = np.abs(A.todense()) @ np.abs(x)
        assert_contract("matvec", A.matvec(x), eng.matvec(A, x), bound)
        assert_contract("rmatvec", A.rmatvec(xt), eng.rmatvec(A, xt))

    @given(A=csr_matrices(), B=st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_matmat_and_rmatmat(self, tier, A, B):
        eng = get_engine(tier)
        X = np.linspace(-1.0, 1.0, A.shape[1] * B).reshape(A.shape[1], B)
        Xt = np.linspace(-1.0, 1.0, A.shape[0] * B).reshape(A.shape[0], B)
        bound = np.abs(A.todense()) @ np.abs(X)
        assert_contract("matmat", A.matmat(X), eng.matmat(A, X), bound)
        assert_contract("rmatmat", A.rmatmat(Xt), eng.rmatmat(A, Xt))

    def test_empty_matrix(self, tier):
        A = CSRMatrix((4, 3), [0, 0, 0, 0, 0], [], [])
        eng = get_engine(tier)
        np.testing.assert_array_equal(eng.matvec(A, np.ones(3)), np.zeros(4))
        np.testing.assert_array_equal(eng.rmatvec(A, np.ones(4)), np.zeros(3))
        np.testing.assert_array_equal(eng.matmat(A, np.ones((3, 2))),
                                      np.zeros((4, 2)))

    def test_fortran_ordered_block(self, tier, small_csr):
        """The batched engine hands kernels Fortran-ordered blocks."""
        eng = get_engine(tier)
        X = np.asfortranarray(
            np.linspace(-1.0, 1.0, small_csr.shape[1] * 4).reshape(-1, 4))
        assert not X.flags.c_contiguous
        bound = np.abs(small_csr.todense()) @ np.abs(X)
        assert_contract("matmat", small_csr.matmat(X),
                        eng.matmat(small_csr, X), bound)

    def test_single_column_matmat_matches_matvec(self, tier, small_csr):
        """A B=1 block must agree with matvec up to the stated tolerance."""
        eng = get_engine(tier)
        x = np.linspace(-2.0, 2.0, small_csr.shape[1])
        ref = small_csr.matvec(x)
        got = eng.matmat(small_csr, x[:, None])[:, 0]
        np.testing.assert_allclose(got, ref, rtol=CONTRACT_RTOL, atol=0.0)


@pytest.mark.parametrize("tier", COMPILED_TIERS)
class TestCrossTierTrisolve:
    @given(F=triangular_factors())
    @settings(max_examples=40, deadline=None)
    def test_vector_solve(self, tier, F):
        eng = get_engine(tier)
        b = np.linspace(-1.0, 1.0, F.n)
        ref = F.solve(b, mode="level")
        got = eng.trisolve(F, b)
        np.testing.assert_allclose(got, ref, rtol=CONTRACT_RTOL, atol=1e-15)

    @given(F=triangular_factors(), B=st.integers(min_value=1, max_value=4))
    @settings(max_examples=25, deadline=None)
    def test_block_solve(self, tier, F, B):
        eng = get_engine(tier)
        b = np.linspace(-1.0, 1.0, F.n * B).reshape(F.n, B)
        ref = F.solve(b, mode="level")
        got = eng.trisolve(F, b)
        np.testing.assert_allclose(got, ref, rtol=CONTRACT_RTOL, atol=1e-15)

    def test_sequential_fallback_levels(self, tier):
        """A dense chain factor (one row per level) hits the sequential
        reference path on the numpy tier; compiled tiers must still agree."""
        n = 12
        dense = np.tril(np.ones((n, n))) + np.diag(np.arange(2.0, n + 2.0))
        F = TriangularFactor.from_csr(CSRMatrix.from_dense(dense),
                                      part="lower")
        assert F.mode == "sequential"
        b = np.linspace(1.0, 3.0, n)
        ref = F.solve(b, mode="sequential")
        np.testing.assert_allclose(get_engine(tier).trisolve(F, b),
                                   ref, rtol=CONTRACT_RTOL, atol=1e-15)

    def test_unit_diagonal(self, tier):
        A = poisson2d(5)
        F = TriangularFactor.from_csr(A, part="lower", unit_diagonal=True)
        b = np.linspace(-1.0, 1.0, F.n)
        np.testing.assert_allclose(get_engine(tier).trisolve(F, b),
                                   F.solve(b, mode="level"),
                                   rtol=CONTRACT_RTOL, atol=1e-15)


@needs_scipy
class TestScipyTrisolveFallback:
    def test_zero_diagonal_keeps_reference_semantics(self):
        """A poisoned diagonal must fall back to the numpy path so Inf/NaN
        propagation matches the reference bit for bit."""
        dense = np.array([[2.0, 0.0], [1.0, 0.0]])
        F = TriangularFactor.from_csr(CSRMatrix.from_dense(dense),
                                      part="lower", engine="scipy")
        b = np.array([4.0, 1.0])
        with np.errstate(divide="ignore"):
            ref = F.solve(b, mode="level")
            got = F.solve(b)
        assert not np.all(np.isfinite(ref))
        np.testing.assert_array_equal(got, ref)

    def test_empty_factor(self):
        F = TriangularFactor(0, [0], [], [], np.empty(0), engine="scipy")
        assert F.solve(np.empty(0)).shape == (0,)


# ----------------------------------------------------------------------------
# boundary normalization: the no-copy regression (satellite 6)
# ----------------------------------------------------------------------------

class TestBoundaryNormalization:
    def test_fast_path_returns_same_object(self):
        x = np.linspace(0.0, 1.0, 7)
        assert as_kernel_vector(x) is x

    def test_slow_path_conversions(self):
        np.testing.assert_array_equal(as_kernel_vector([1, 2, 3]),
                                      np.array([1.0, 2.0, 3.0]))
        col = np.ones((4, 1))
        assert as_kernel_vector(col).shape == (4,)
        strided = np.arange(10.0)[::2]
        assert as_kernel_vector(strided).flags.c_contiguous

    def test_matvec_accepts_column_and_list(self, small_csr):
        x = np.linspace(-1.0, 1.0, small_csr.shape[1])
        ref = small_csr.matvec(x)
        np.testing.assert_array_equal(small_csr.matvec(x[:, None]), ref)
        np.testing.assert_array_equal(small_csr.matvec(list(x)), ref)

    def test_dimension_mismatch_message_preserved(self, small_csr):
        with pytest.raises(ValueError, match="dimension mismatch"):
            small_csr.matvec(np.ones(small_csr.shape[1] + 1))

    @pytest.mark.parametrize("tier", ["numpy"] + COMPILED_TIERS)
    def test_gmres_hot_loop_never_copies(self, tier, monkeypatch):
        """The solver hot loop must stay on the no-copy fast path: zero
        trips through the slow-path converter during a whole solve."""
        from repro.core.gmres import gmres

        calls = []
        real = kernels_mod._convert_vector

        def counting(x):
            calls.append(type(x).__name__)
            return real(x)

        monkeypatch.setattr(kernels_mod, "_convert_vector", counting)
        A = poisson2d(8).with_engine(tier)
        b = np.ones(A.shape[0])
        result = gmres(A, b, tol=1e-10, maxiter=120, restart=30)
        assert result.converged
        assert calls == []

    @pytest.mark.parametrize("tier", ["numpy"] + COMPILED_TIERS)
    def test_preconditioned_hot_loop_never_copies(self, tier, monkeypatch):
        from repro.core.gmres import gmres
        from repro.precond.ilu import ILU0Preconditioner

        calls = []
        real = kernels_mod._convert_vector
        monkeypatch.setattr(kernels_mod, "_convert_vector",
                            lambda x: calls.append(1) or real(x))
        A = poisson2d(8).with_engine(tier)
        M = ILU0Preconditioner(A)
        b = np.ones(A.shape[0])
        result = gmres(A, b, preconditioner=M, tol=1e-10, maxiter=60)
        assert result.converged
        assert calls == []


# ----------------------------------------------------------------------------
# end-to-end: solves and campaigns are trial-identical per the contract
# ----------------------------------------------------------------------------

class TestEndToEnd:
    @pytest.mark.parametrize("tier", COMPILED_TIERS)
    def test_gmres_matches_reference_tier(self, tier):
        from repro.core.gmres import gmres

        b = np.ones(poisson2d(8).shape[0])
        ref = gmres(poisson2d(8), b, tol=1e-10, maxiter=120, restart=30)
        got = gmres(poisson2d(8).with_engine(tier), b, tol=1e-10,
                    maxiter=120, restart=30)
        assert got.status == ref.status
        assert got.iterations == ref.iterations
        np.testing.assert_allclose(got.x, ref.x, rtol=1e-8)

    @needs_scipy
    def test_campaign_trial_identity_across_tiers(self, poisson_problem_tiny):
        """Statuses and iteration counts match exactly across tiers;
        residual norms to 1e-6 relative (the restarted iteration amplifies
        the 1e-16 per-kernel differences; measured worst case ~7e-8)."""
        from repro import api

        spec = CampaignSpec(inner_iterations=5, max_outer=20, stride=10)
        spec_sp = spec.replace(exec=ExecutionSpec(kernels="scipy"))
        r_np = api.run_campaign(poisson_problem_tiny, spec)
        r_sp = api.run_campaign(poisson_problem_tiny, spec_sp)
        assert len(r_np.trials) == len(r_sp.trials)
        for a, b in zip(r_np.trials, r_sp.trials):
            assert a.fault_class == b.fault_class
            assert a.status == b.status
            assert a.outer_iterations == b.outer_iterations
            assert a.residual_norm == pytest.approx(b.residual_norm,
                                                    rel=1e-6)

    def test_numpy_tier_campaign_bit_identical_to_default(
            self, poisson_problem_tiny, monkeypatch):
        """Explicitly selecting "numpy" is indistinguishable from the
        engine-less default — same trials, bit for bit."""
        from repro import api

        monkeypatch.delenv(kernels_mod.KERNELS_ENV_VAR, raising=False)
        spec = CampaignSpec(inner_iterations=5, max_outer=10, stride=25)
        r_default = api.run_campaign(poisson_problem_tiny, spec)
        r_numpy = api.run_campaign(
            poisson_problem_tiny,
            spec.replace(exec=ExecutionSpec(kernels="numpy")))
        for a, b in zip(r_default.trials, r_numpy.trials):
            assert a.status == b.status
            assert a.residual_norm == b.residual_norm
            assert a.outer_iterations == b.outer_iterations


# ----------------------------------------------------------------------------
# per-phase timing counters (satellite: kernel profiling)
# ----------------------------------------------------------------------------

class TestKernelProfile:
    def test_profiled_solve_is_bit_identical(self):
        from repro.core.gmres import gmres
        from repro.utils.profile import KernelProfile

        A = poisson2d(6)
        b = np.ones(A.shape[0])
        plain = gmres(A, b, tol=1e-10, maxiter=60)
        prof = KernelProfile()
        timed = gmres(A, b, tol=1e-10, maxiter=60, profile=prof)
        np.testing.assert_array_equal(timed.x, plain.x)
        assert timed.iterations == plain.iterations
        assert timed.residual_norm == plain.residual_norm

    def test_profile_counts_and_summary(self):
        from repro.core.gmres import gmres
        from repro.utils.profile import KernelProfile

        A = poisson2d(6)
        b = np.ones(A.shape[0])
        prof = KernelProfile()
        result = gmres(A, b, tol=1e-10, maxiter=60, profile=prof)
        # The profile times the Arnoldi hot loop: one spmv per iteration.
        # (`matvecs` additionally counts the untimed true-residual
        # computations outside the loop.)
        assert prof.spmv_calls == result.iterations
        assert prof.spmv_calls <= result.matvecs
        assert prof.orth_calls == result.iterations
        assert prof.total_time >= 0.0
        summary = result.summary()
        assert summary["kernel_profile"]["spmv"]["calls"] == prof.spmv_calls
        assert "total_seconds" in summary["kernel_profile"]

    def test_profile_off_leaves_summary_unchanged(self):
        from repro.core.gmres import gmres

        A = poisson2d(5)
        result = gmres(A, np.ones(A.shape[0]), tol=1e-10, maxiter=40)
        assert result.profile is None
        assert "kernel_profile" not in result.summary()

    def test_kernel_profile_event_emitted(self):
        from repro.core.gmres import gmres
        from repro.utils.profile import KernelProfile

        A = poisson2d(5)
        result = gmres(A, np.ones(A.shape[0]), tol=1e-10, maxiter=40,
                       profile=KernelProfile())
        events = [e for e in result.events if e.kind == "kernel_profile"]
        assert len(events) == 1
        assert events[0].data["profile"]["spmv"]["calls"] == result.iterations

    def test_ft_gmres_accumulates_inner_profiles(self):
        from repro.core.ftgmres import ft_gmres
        from repro.utils.profile import KernelProfile

        A = poisson2d(5)
        prof = KernelProfile()
        result = ft_gmres(A, np.ones(A.shape[0]), inner_iterations=5,
                          max_outer=10, profile=prof)
        assert result.profile is prof
        assert prof.spmv_calls > 0
        assert result.summary()["kernel_profile"]["spmv"]["calls"] \
            == prof.spmv_calls

    def test_merge(self):
        from repro.utils.profile import KernelProfile

        a = KernelProfile()
        a.add("spmv", 0.5, calls=3)
        b = KernelProfile()
        b.add("spmv", 0.25, calls=1)
        b.add("lsq", 0.125, calls=2)
        a.merge(b)
        assert a.spmv_calls == 4
        assert a.spmv_time == 0.75
        assert a.lsq_calls == 2
        with pytest.raises(ValueError, match="unknown phase"):
            a.add("fft", 1.0)


# ----------------------------------------------------------------------------
# numba tier specifics (skipped cleanly when numba is absent)
# ----------------------------------------------------------------------------

@needs_numba
class TestNumbaTier:
    def test_registered_and_compiled(self):
        eng = get_engine("numba")
        assert eng.name == "numba"
        assert eng.compiled

    def test_bit_identical_products(self, small_csr):
        eng = get_engine("numba")
        x = np.linspace(-1.0, 1.0, small_csr.shape[1])
        np.testing.assert_array_equal(eng.matvec(small_csr, x),
                                      small_csr.matvec(x))
