"""Tests for the parallel campaign execution engine (:mod:`repro.exec`).

The engine's central promise: a parallel campaign run is trial-for-trial
identical to a serial one — same :class:`TrialRecord` values, same order —
for every backend, worker count, and chunking choice.
"""

from __future__ import annotations

import pytest

from repro.exec.executor import CampaignExecutor, resolve_backend, resolve_workers
from repro.exec.spec import CampaignConfig, ProblemFactory, TrialSpec
from repro.faults.campaign import FaultCampaign
from repro.gallery.problems import poisson_problem


@pytest.fixture(scope="module")
def tiny_problem():
    return poisson_problem(grid_n=8)


@pytest.fixture(scope="module")
def campaign(tiny_problem):
    return FaultCampaign(tiny_problem, inner_iterations=10, max_outer=50,
                         detector="bound", detector_response="zero")


@pytest.fixture(scope="module")
def serial_result(campaign):
    return campaign.run(stride=11)


class TestWorkerResolution:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == 1

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(None) == 3

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers(2) == 2

    def test_zero_means_cpu_count(self):
        assert resolve_workers(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_backend_auto_selection(self):
        assert resolve_backend(None, 1) == "serial"
        assert resolve_backend(None, 4) == "process"
        assert resolve_backend("thread", 4) == "thread"
        with pytest.raises(ValueError):
            resolve_backend("gpu", 4)


class TestCampaignConfig:
    def test_round_trip(self, campaign):
        config = campaign.to_config()
        rebuilt = config.build_campaign()
        assert rebuilt.inner_iterations == campaign.inner_iterations
        assert rebuilt.mgs_position == campaign.mgs_position
        assert rebuilt.detector is not None  # "bound" spec re-resolved
        assert sorted(rebuilt.fault_classes) == sorted(campaign.fault_classes)

    def test_exactly_one_problem_source(self, tiny_problem):
        with pytest.raises(ValueError):
            CampaignConfig(problem=None, problem_factory=None, inner_iterations=10,
                           max_outer=50, outer_tol=1e-8, fault_classes={},
                           mgs_position="first", detector=None,
                           detector_response="zero", site="hessenberg")
        with pytest.raises(ValueError):
            CampaignConfig(problem=tiny_problem,
                           problem_factory=ProblemFactory(poisson_problem, (8,)),
                           inner_iterations=10, max_outer=50, outer_tol=1e-8,
                           fault_classes={}, mgs_position="first", detector=None,
                           detector_response="zero", site="hessenberg")

    def test_problem_factory_build(self):
        factory = ProblemFactory(poisson_problem, kwargs={"grid_n": 8})
        config_problem = factory.build()
        assert config_problem.A.shape == (64, 64)

    def test_picklable(self, campaign):
        import pickle

        config = campaign.to_config()
        clone = pickle.loads(pickle.dumps(config))
        assert clone.inner_iterations == config.inner_iterations
        assert clone.build_campaign().problem.name == campaign.problem.name


class TestDeterministicParallelism:
    """The headline guarantee: parallel output == serial output, in order."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backend_matches_serial(self, campaign, serial_result, backend):
        parallel = campaign.run(stride=11, backend=backend, workers=2)
        assert parallel.trials == serial_result.trials
        assert parallel.failure_free_outer == serial_result.failure_free_outer
        assert parallel.failure_free_residual == serial_result.failure_free_residual

    def test_single_trial_chunks_match_serial(self, campaign, serial_result):
        """chunksize=1 maximizes reordering opportunities; order must survive."""
        parallel = campaign.run(stride=11, backend="thread", workers=4, chunksize=1)
        assert parallel.trials == serial_result.trials

    def test_workers_env_knob_respected(self, campaign, serial_result, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "2")
        parallel = campaign.run(stride=11, backend="thread")
        assert parallel.trials == serial_result.trials

    def test_problem_factory_workers_match_serial(self, campaign, serial_result):
        """Workers that rebuild the problem locally must agree with serial."""
        config = campaign.to_config(
            problem_factory=ProblemFactory(poisson_problem, kwargs={"grid_n": 8}))
        executor = CampaignExecutor(config, backend="process", workers=2)
        parallel = campaign.run(stride=11, executor=executor)
        assert parallel.trials == serial_result.trials


class TestExecutorMechanics:
    def test_progress_reaches_total(self, campaign):
        calls = []
        campaign.run(stride=17, backend="thread", workers=2,
                     progress=lambda done, total: calls.append((done, total)))
        assert calls, "progress callback never fired"
        dones = [d for d, _ in calls]
        assert dones == sorted(dones)
        assert calls[-1][0] == calls[-1][1]

    def test_empty_spec_list(self, campaign):
        executor = CampaignExecutor(campaign)
        assert executor.run([]) == []

    def test_duplicate_indices_rejected(self, campaign):
        executor = CampaignExecutor(campaign)
        specs = [TrialSpec(0, "large", 1), TrialSpec(0, "large", 2)]
        with pytest.raises(ValueError):
            executor.run(specs)

    def test_unknown_fault_class(self, campaign):
        with pytest.raises(KeyError):
            campaign.run_spec(TrialSpec(0, "no-such-class", 1))

    def test_invalid_chunksize(self, campaign):
        with pytest.raises(ValueError):
            CampaignExecutor(campaign, chunksize=0)

    def test_batch_size_with_pool_backend_rejected(self, campaign):
        """Knobs the backend would silently ignore are errors up front."""
        with pytest.raises(ValueError, match="batch_size"):
            CampaignExecutor(campaign, backend="process", batch_size=8)

    def test_parallel_workers_with_serial_rejected(self, campaign):
        with pytest.raises(ValueError, match="workers"):
            CampaignExecutor(campaign, backend="serial", workers=4)

    def test_chunksize_with_batched_rejected(self, campaign):
        with pytest.raises(ValueError, match="chunksize"):
            CampaignExecutor(campaign, backend="batched", chunksize=2)

    def test_workers_one_accepted_everywhere(self, campaign):
        assert CampaignExecutor(campaign, backend="serial", workers=1).backend == "serial"
        assert CampaignExecutor(campaign, backend="batched", workers=1).backend == "batched"

    def test_batch_size_auto_selects_batched(self, campaign):
        executor = CampaignExecutor(campaign, batch_size=4)
        assert executor.backend == "batched"
        assert executor.batch_size == 4

    def test_ambiguous_auto_backend_rejected(self, campaign):
        with pytest.raises(ValueError, match="batch_size"):
            CampaignExecutor(campaign, workers=4, batch_size=4)

    def test_env_workers_do_not_trip_serial_validation(self, campaign, monkeypatch):
        """REPRO_WORKERS is a default, not an explicit knob; serial ignores it."""
        monkeypatch.setenv("REPRO_WORKERS", "4")
        executor = CampaignExecutor(campaign, backend="serial")
        assert executor.backend == "serial"

    def test_env_workers_do_not_veto_explicit_batch_size(self, campaign, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        executor = CampaignExecutor(campaign, batch_size=8)
        assert executor.backend == "batched"
        assert executor.batch_size == 8

    def test_workers_zero_means_one_per_cpu(self, campaign):
        """workers=0 must stay accepted even when it resolves to 1 CPU."""
        executor = CampaignExecutor(campaign, workers=0)
        assert executor.workers >= 1
        assert executor.backend in ("serial", "process")

    def test_non_campaign_config_rejected(self):
        with pytest.raises(TypeError):
            CampaignExecutor(object())

    def test_spec_order_defines_output_order(self, campaign):
        """Reversed input specs still come back sorted by spec.index."""
        specs = campaign.trial_specs([1, 26])
        executor = CampaignExecutor(campaign)
        forward = executor.run(specs)
        backward = executor.run(list(reversed(specs)))
        assert forward == backward


class TestWorkerIsolation:
    def test_built_campaigns_share_no_mutable_state(self, campaign):
        """Each worker's campaign gets its own detector and fault models."""
        config = campaign.to_config()
        one = config.build_campaign()
        two = config.build_campaign()
        assert one.detector is not two.detector
        for cls in one.fault_classes:
            assert one.fault_classes[cls] is not two.fault_classes[cls]

    def test_custom_solver_params_survive_rebuild(self, tiny_problem):
        """inner_params/outer_params must reach worker-rebuilt campaigns."""
        from repro.core.gmres import GMRESParameters

        custom = FaultCampaign(tiny_problem, inner_iterations=10, max_outer=50,
                               inner_params=GMRESParameters(tol=0.0, maxiter=10,
                                                            orthogonalization="cgs2"))
        rebuilt = custom.to_config().build_campaign()
        assert rebuilt.params.inner.orthogonalization == "cgs2"
        serial = custom.run(stride=13)
        parallel = custom.run(stride=13, backend="process", workers=2)
        assert parallel.trials == serial.trials

    def test_trial_specs_accepts_iterator(self, campaign):
        """A generator of locations must sweep every fault class."""
        from_list = campaign.trial_specs([1, 12])
        from_iter = campaign.trial_specs(iter([1, 12]))
        assert from_iter == from_list
        assert len(from_iter) == 2 * len(campaign.fault_classes)
