"""Unit tests for the Arnoldi process, its hooks, and its invariants."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.arnoldi import ArnoldiContext, arnoldi_process, arnoldi_step
from repro.core.detectors import HessenbergBoundDetector
from repro.core.exceptions import FaultDetectedError
from repro.faults.injector import FaultInjector
from repro.faults.models import ScalingFault
from repro.faults.schedule import InjectionSchedule
from repro.sparse.linear_operator import aslinearoperator
from repro.sparse.norms import frobenius_norm


class TestArnoldiRelation:
    @pytest.mark.parametrize("orth", ["mgs", "cgs", "cgs2"])
    def test_arnoldi_relation(self, rng, poisson_small, orth):
        """A Q_k = Q_{k+1} H_k must hold for every orthogonalization variant."""
        n = poisson_small.shape[0]
        v0 = rng.standard_normal(n)
        Q, H, breakdown = arnoldi_process(poisson_small, v0, 10, orthogonalization=orth)
        assert not breakdown
        AQ = np.column_stack([poisson_small.matvec(Q[:, j]) for j in range(H.shape[1])])
        np.testing.assert_allclose(AQ, Q @ H, rtol=1e-10, atol=1e-10)

    @pytest.mark.parametrize("orth", ["mgs", "cgs2"])
    def test_orthonormal_basis(self, rng, nonsym_small, orth):
        v0 = rng.standard_normal(nonsym_small.shape[0])
        Q, H, _ = arnoldi_process(nonsym_small, v0, 12, orthogonalization=orth)
        gram = Q.T @ Q
        np.testing.assert_allclose(gram, np.eye(Q.shape[1]), atol=1e-10)

    def test_hessenberg_entries_bounded(self, rng, poisson_medium):
        """The paper's invariant: every |h_ij| <= ||A||_F (Eq. 3)."""
        v0 = rng.standard_normal(poisson_medium.shape[0])
        _, H, _ = arnoldi_process(poisson_medium, v0, 20)
        assert np.abs(H).max() <= frobenius_norm(poisson_medium) + 1e-12

    def test_happy_breakdown_on_invariant_subspace(self):
        """Starting in an eigenvector gives an invariant subspace after 1 step."""
        A = np.diag([1.0, 2.0, 3.0])
        v0 = np.array([1.0, 0.0, 0.0])
        Q, H, breakdown = arnoldi_process(A, v0, 3)
        assert breakdown
        assert H.shape[1] == 1
        assert H[1, 0] == pytest.approx(0.0, abs=1e-14)

    def test_m_capped_at_n(self, rng):
        A = np.eye(4) * 2.0 + np.diag(np.ones(3), 1)
        v0 = rng.standard_normal(4)
        Q, H, _ = arnoldi_process(A, v0, 10)
        assert H.shape[1] <= 4

    def test_zero_start_vector_rejected(self, poisson_small):
        with pytest.raises(ValueError, match="nonzero"):
            arnoldi_process(poisson_small, np.zeros(poisson_small.shape[0]), 3)

    def test_wrong_length_rejected(self, poisson_small):
        with pytest.raises(ValueError, match="length"):
            arnoldi_process(poisson_small, np.ones(3), 3)

    def test_nonpositive_steps_rejected(self, poisson_small, rng):
        with pytest.raises(ValueError):
            arnoldi_process(poisson_small, rng.standard_normal(poisson_small.shape[0]), 0)

    def test_invalid_orthogonalization(self, poisson_small, rng):
        v0 = rng.standard_normal(poisson_small.shape[0])
        with pytest.raises(ValueError, match="orthogonalization"):
            arnoldi_process(poisson_small, v0, 3, orthogonalization="householder")


class TestContext:
    def test_invalid_response_rejected(self):
        with pytest.raises(ValueError):
            ArnoldiContext(detector_response="explode")

    def test_matvec_counter(self, rng, poisson_small):
        ctx = ArnoldiContext()
        v0 = rng.standard_normal(poisson_small.shape[0])
        arnoldi_process(poisson_small, v0, 5, ctx=ctx)
        assert ctx.matvecs == 5


class TestInjectionHooks:
    def _injector(self, site="hessenberg", factor=1e150, **sched_kwargs):
        return FaultInjector(ScalingFault(factor),
                             InjectionSchedule(site=site, **sched_kwargs))

    def test_hessenberg_injection_changes_h(self, rng, poisson_small):
        v0 = rng.standard_normal(poisson_small.shape[0])
        injector = self._injector(aggregate_inner_iteration=2, mgs_position="first")
        ctx = ArnoldiContext(injector=injector)
        _, H_faulty, _ = arnoldi_process(poisson_small, v0, 6, ctx=ctx)
        _, H_clean, _ = arnoldi_process(poisson_small, v0, 6)
        assert injector.injections_performed == 1
        assert ctx.events.count("fault_injected") == 1
        # Columns before the fault are untouched; the targeted entry h_{1,3}
        # (first MGS coefficient of step 2) carries the x1e150 corruption.
        np.testing.assert_allclose(H_faulty[:3, :2], H_clean[:3, :2], rtol=1e-12)
        assert H_faulty[0, 2] == pytest.approx(H_clean[0, 2] * 1e150, rel=1e-12)

    def test_single_transient_fault_fires_once(self, rng, poisson_small):
        v0 = rng.standard_normal(poisson_small.shape[0])
        injector = self._injector(mgs_position="first")  # matches every iteration
        ctx = ArnoldiContext(injector=injector)
        arnoldi_process(poisson_small, v0, 8, ctx=ctx)
        assert injector.injections_performed == 1

    def test_spmv_injection(self, rng, poisson_small):
        v0 = rng.standard_normal(poisson_small.shape[0])
        injector = FaultInjector(ScalingFault(1e10),
                                 InjectionSchedule(site="spmv", aggregate_inner_iteration=1,
                                                   mgs_position=None),
                                 vector_index=3)
        ctx = ArnoldiContext(injector=injector)
        arnoldi_process(poisson_small, v0, 4, ctx=ctx)
        assert injector.injections_performed == 1
        assert injector.records[0].site == "spmv"
        assert injector.records[0].vector_index == 3

    def test_subdiag_injection(self, rng, poisson_small):
        v0 = rng.standard_normal(poisson_small.shape[0])
        injector = FaultInjector(ScalingFault(1e-300),
                                 InjectionSchedule(site="subdiag", aggregate_inner_iteration=2,
                                                   mgs_position=None))
        ctx = ArnoldiContext(injector=injector)
        _, H, _ = arnoldi_process(poisson_small, v0, 5, ctx=ctx)
        assert injector.injections_performed == 1
        # The corrupted subdiagonal entry is (3, 2) in 0-based indexing.
        assert abs(H[3, 2]) < 1e-200


class TestDetectionHooks:
    def test_large_fault_detected_and_zeroed(self, rng, poisson_small):
        v0 = rng.standard_normal(poisson_small.shape[0])
        bound = frobenius_norm(poisson_small)
        injector = FaultInjector(ScalingFault(1e150),
                                 InjectionSchedule(aggregate_inner_iteration=1,
                                                   mgs_position="first"))
        detector = HessenbergBoundDetector(bound)
        ctx = ArnoldiContext(injector=injector, detector=detector, detector_response="zero")
        _, H, _ = arnoldi_process(poisson_small, v0, 5, ctx=ctx)
        assert ctx.events.count("fault_detected") == 1
        assert abs(H[0, 1]) == 0.0  # filtered to zero

    def test_small_fault_not_detected(self, rng, poisson_small):
        v0 = rng.standard_normal(poisson_small.shape[0])
        bound = frobenius_norm(poisson_small)
        injector = FaultInjector(ScalingFault(10 ** -0.5),
                                 InjectionSchedule(aggregate_inner_iteration=1,
                                                   mgs_position="first"))
        detector = HessenbergBoundDetector(bound)
        ctx = ArnoldiContext(injector=injector, detector=detector, detector_response="zero")
        arnoldi_process(poisson_small, v0, 5, ctx=ctx)
        assert ctx.events.count("fault_detected") == 0
        assert injector.injections_performed == 1

    def test_recompute_response_restores_value(self, rng, poisson_small):
        v0 = rng.standard_normal(poisson_small.shape[0])
        bound = frobenius_norm(poisson_small)
        injector = FaultInjector(ScalingFault(1e150),
                                 InjectionSchedule(aggregate_inner_iteration=0,
                                                   mgs_position="first"))
        detector = HessenbergBoundDetector(bound)
        ctx = ArnoldiContext(injector=injector, detector=detector, detector_response="recompute")
        _, H_protected, _ = arnoldi_process(poisson_small, v0, 5, ctx=ctx)
        _, H_clean, _ = arnoldi_process(poisson_small, v0, 5)
        np.testing.assert_allclose(H_protected, H_clean, rtol=1e-12, atol=1e-12)

    def test_raise_response(self, rng, poisson_small):
        v0 = rng.standard_normal(poisson_small.shape[0])
        bound = frobenius_norm(poisson_small)
        injector = FaultInjector(ScalingFault(1e150),
                                 InjectionSchedule(aggregate_inner_iteration=0,
                                                   mgs_position="first"))
        detector = HessenbergBoundDetector(bound)
        ctx = ArnoldiContext(injector=injector, detector=detector, detector_response="raise")
        with pytest.raises(FaultDetectedError):
            arnoldi_process(poisson_small, v0, 5, ctx=ctx)

    def test_clamp_response_bounds_value(self, rng, poisson_small):
        v0 = rng.standard_normal(poisson_small.shape[0])
        bound = frobenius_norm(poisson_small)
        injector = FaultInjector(ScalingFault(1e150),
                                 InjectionSchedule(aggregate_inner_iteration=0,
                                                   mgs_position="first"))
        detector = HessenbergBoundDetector(bound)
        ctx = ArnoldiContext(injector=injector, detector=detector, detector_response="clamp")
        _, H, _ = arnoldi_process(poisson_small, v0, 5, ctx=ctx)
        assert np.abs(H).max() <= bound * (1 + 1e-12)

    def test_no_false_positives_without_faults(self, rng, poisson_medium):
        """The bound detector never fires on a clean Arnoldi run (Eq. 3)."""
        v0 = rng.standard_normal(poisson_medium.shape[0])
        detector = HessenbergBoundDetector(frobenius_norm(poisson_medium))
        ctx = ArnoldiContext(detector=detector, detector_response="raise")
        arnoldi_process(poisson_medium, v0, 25, ctx=ctx)  # must not raise
        assert ctx.events.count("fault_detected") == 0


class TestArnoldiStepEdgeCases:
    def test_nonfinite_subdiag_returns_nan_basis(self, rng, poisson_small):
        op = aslinearoperator(poisson_small)
        n = op.shape[0]
        basis = np.zeros((n, 3))
        v0 = rng.standard_normal(n)
        basis[:, 0] = v0 / np.linalg.norm(v0)
        injector = FaultInjector(ScalingFault(np.inf),
                                 InjectionSchedule(site="subdiag", mgs_position=None))
        ctx = ArnoldiContext(injector=injector)
        h_col, q_next, breakdown = arnoldi_step(op, basis, 0, ctx)
        assert not breakdown
        assert q_next is not None
        assert not np.all(np.isfinite(q_next))


class TestNoHookFastPath:
    """The zero-overhead branch must be bit-identical to the hooked branch.

    ``arnoldi_step`` skips the injection/detection plumbing entirely when no
    injector and no detector are attached; these tests pin down that the
    fast branch performs the exact same floating-point operations as the
    hooked branch driven with a null context.
    """

    @pytest.mark.parametrize("orth", ["mgs", "cgs", "cgs2"])
    def test_bit_identical_to_null_context(self, rng, poisson_medium, orth):
        from repro.faults.injector import NullInjector

        n = poisson_medium.shape[0]
        v0 = rng.standard_normal(n)
        fast_ctx = ArnoldiContext()  # injector=None, detector=None -> fast path
        hooked_ctx = ArnoldiContext(injector=NullInjector())  # forces hooked path
        Q_fast, H_fast, bd_fast = arnoldi_process(
            poisson_medium, v0, 15, orthogonalization=orth, ctx=fast_ctx)
        Q_hook, H_hook, bd_hook = arnoldi_process(
            poisson_medium, v0, 15, orthogonalization=orth, ctx=hooked_ctx)
        assert bd_fast == bd_hook
        assert np.array_equal(H_fast, H_hook), "h_col values must match bit-for-bit"
        assert np.array_equal(Q_fast, Q_hook), "q_next values must match bit-for-bit"

    def test_single_step_h_col_and_q_next(self, rng, poisson_small):
        from repro.faults.injector import NullInjector

        op = aslinearoperator(poisson_small)
        n = op.shape[0]
        v0 = rng.standard_normal(n)
        q0 = v0 / np.linalg.norm(v0)
        basis_fast = np.zeros((n, 3), order="F")
        basis_hook = np.zeros((n, 3), order="F")
        basis_fast[:, 0] = basis_hook[:, 0] = q0
        h_fast, q_fast, _ = arnoldi_step(op, basis_fast, 0, ArnoldiContext())
        h_hook, q_hook, _ = arnoldi_step(op, basis_hook, 0,
                                         ArnoldiContext(injector=NullInjector()))
        assert np.array_equal(h_fast, h_hook)
        assert np.array_equal(q_fast, q_hook)

    def test_gmres_identical_with_and_without_hooks(self, poisson_problem_tiny):
        """End-to-end: the whole solve is unchanged by the fast path."""
        from repro.core.gmres import gmres
        from repro.faults.injector import NullInjector

        p = poisson_problem_tiny
        fast = gmres(p.A, p.b, tol=1e-10, maxiter=80)
        hooked = gmres(p.A, p.b, tol=1e-10, maxiter=80, injector=NullInjector())
        assert fast.iterations == hooked.iterations
        assert fast.residual_norm == hooked.residual_norm
        assert np.array_equal(fast.x, hooked.x)

    def test_fast_path_skips_event_plumbing(self, rng, poisson_small):
        """No events, no matvec miscounts on the fast path."""
        ctx = ArnoldiContext()
        v0 = rng.standard_normal(poisson_small.shape[0])
        arnoldi_process(poisson_small, v0, 5, ctx=ctx)
        assert ctx.matvecs == 5
        assert len(ctx.events) == 0
