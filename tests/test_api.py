"""The public-API facade: equivalence suite and surface snapshot.

The acceptance contract of the config-first redesign:

* legacy entry points (``gmres``/``fgmres``/``ft_gmres``/``FaultCampaign.run``/
  ``sweep_injection_locations``/``run_fault_sweep``) produce **bit-identical**
  results to the spec-driven :func:`repro.api.solve`/:func:`repro.api.run_campaign`
  paths (they share one execution path; this suite asserts it stays that way);
* a campaign defined purely as a JSON spec file runs through
  ``repro.api.run_campaign`` on all four backends with trial-for-trial
  identical results;
* the public names exported from ``repro.api``/``repro.specs``/``repro.registry``
  match the committed manifest (``tests/data/api_surface.json``), so the API
  surface cannot drift silently.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro import api
from repro.baselines.cg import cg
from repro.core.fgmres import fgmres
from repro.core.ftgmres import ft_gmres
from repro.core.gmres import gmres
from repro.faults.campaign import FaultCampaign, sweep_injection_locations
from repro.faults.injector import FaultInjector
from repro.faults.models import ScalingFault
from repro.faults.schedule import InjectionSchedule
from repro.gallery.problems import circuit_problem, poisson_problem
from repro.specs import CampaignSpec, SolveSpec

DATA_DIR = pathlib.Path(__file__).parent / "data"


@pytest.fixture(scope="module")
def poisson():
    return poisson_problem(grid_n=8)


@pytest.fixture(scope="module")
def circuit():
    return circuit_problem(n_nodes=60)


def make_injector(location=2):
    return FaultInjector(
        ScalingFault(1e150),
        InjectionSchedule(site="hessenberg", aggregate_inner_iteration=location,
                          mgs_position="first"))


def assert_solver_results_identical(a, b):
    assert type(a) is type(b)
    assert a.status is b.status
    assert np.array_equal(a.x, b.x)
    assert a.residual_norm == b.residual_norm
    assert list(a.history.as_array()) == list(b.history.as_array())


# ====================================================================== #
# solve() facade vs legacy entry points (bit-identical)
# ====================================================================== #
class TestSolveEquivalence:
    def test_gmres_plain(self, poisson):
        legacy = gmres(poisson.A, poisson.b, tol=1e-10, maxiter=200)
        spec = api.solve(poisson.A, poisson.b, {"method": "gmres", "tol": 1e-10,
                                                "maxiter": 200})
        assert legacy.iterations == spec.iterations
        assert_solver_results_identical(legacy, spec)

    def test_gmres_preconditioned_restarted(self, poisson):
        legacy = gmres(poisson.A, poisson.b, tol=1e-10, maxiter=120, restart=15,
                       preconditioner="ilu0", orthogonalization="cgs2")
        spec = api.solve(poisson.A, poisson.b, SolveSpec(
            method="gmres", tol=1e-10, maxiter=120, restart=15,
            preconditioner="ilu0", orthogonalization="cgs2"))
        assert_solver_results_identical(legacy, spec)

    def test_gmres_with_detector_and_injector(self, poisson):
        legacy = gmres(poisson.A, poisson.b, tol=1e-10, maxiter=200,
                       detector="bound", detector_response="zero",
                       injector=make_injector())
        spec = api.solve(poisson.A, poisson.b,
                         {"method": "gmres", "tol": 1e-10, "maxiter": 200,
                          "detector": "bound", "detector_response": "zero"},
                         injector=make_injector())
        assert_solver_results_identical(legacy, spec)
        assert legacy.events.count("fault_detected") == spec.events.count("fault_detected")

    def test_fgmres(self, poisson):
        legacy = fgmres(poisson.A, poisson.b, tol=1e-10, max_outer=40)
        spec = api.solve(poisson.A, poisson.b, "fgmres", tol=1e-10, max_outer=40)
        assert_solver_results_identical(legacy, spec)

    def test_ft_gmres_failure_free(self, circuit):
        legacy = ft_gmres(circuit.A, circuit.b, inner_iterations=10, max_outer=40)
        spec = api.solve(circuit.A, circuit.b, "ft_gmres", max_outer=40,
                         inner={"method": "gmres", "tol": 0.0, "maxiter": 10})
        assert legacy.outer_iterations == spec.outer_iterations
        assert legacy.total_inner_iterations == spec.total_inner_iterations
        assert_solver_results_identical(legacy, spec)

    def test_ft_gmres_with_fault_and_detector(self, poisson):
        from repro.core.gmres import GMRESParameters
        from repro.core.ftgmres import FTGMRESParameters

        params = FTGMRESParameters(inner=GMRESParameters(
            tol=0.0, maxiter=8, detector="bound", detector_response="zero"))
        legacy = ft_gmres(poisson.A, poisson.b, params=params, max_outer=40,
                          injector=make_injector())
        spec = api.solve(poisson.A, poisson.b, "ft_gmres", max_outer=40,
                         inner={"method": "gmres", "tol": 0.0, "maxiter": 8,
                                "detector": "bound", "detector_response": "zero"},
                         injector=make_injector())
        assert legacy.faults_detected == spec.faults_detected
        assert_solver_results_identical(legacy, spec)

    def test_cg(self, poisson):
        legacy = cg(poisson.A, poisson.b, tol=1e-10, maxiter=300)
        spec = api.solve(poisson.A, poisson.b, "cg", tol=1e-10, maxiter=300)
        assert_solver_results_identical(legacy, spec)

    def test_injector_rejected_for_reliable_methods(self, poisson):
        with pytest.raises(ValueError, match="injector"):
            api.solve(poisson.A, poisson.b, "fgmres", injector=make_injector())
        with pytest.raises(ValueError, match="injection"):
            api.solve(poisson.A, poisson.b, "cg", injector=make_injector())


# ====================================================================== #
# run_campaign() facade vs the legacy campaign entry points
# ====================================================================== #
class TestCampaignEquivalence:
    @pytest.fixture(scope="class")
    def campaign_args(self):
        return dict(inner_iterations=6, max_outer=30, stride=11)

    def test_matches_sweep_injection_locations(self, poisson, campaign_args):
        legacy = sweep_injection_locations(poisson, detector="bound", **campaign_args)
        spec = api.run_campaign(poisson, CampaignSpec(
            detector="bound",
            inner_iterations=campaign_args["inner_iterations"],
            max_outer=campaign_args["max_outer"],
            stride=campaign_args["stride"]))
        assert legacy.failure_free_outer == spec.failure_free_outer
        assert legacy.trials == spec.trials

    def test_matches_fault_campaign_run(self, poisson, campaign_args):
        campaign = FaultCampaign(poisson,
                                 inner_iterations=campaign_args["inner_iterations"],
                                 max_outer=campaign_args["max_outer"])
        legacy = campaign.run(stride=campaign_args["stride"])
        spec = api.run_campaign(poisson, {
            "inner_iterations": campaign_args["inner_iterations"],
            "max_outer": campaign_args["max_outer"],
            "stride": campaign_args["stride"]})
        assert legacy.trials == spec.trials

    def test_run_fault_sweep_kwargs_and_spec_agree(self, poisson, campaign_args):
        from repro.experiments.figure34 import run_fault_sweep

        by_kwargs = run_fault_sweep(poisson, mgs_position="last",
                                    detector="bound", **campaign_args)
        by_spec = run_fault_sweep(poisson, CampaignSpec(
            mgs_position="last", detector="bound",
            inner_iterations=campaign_args["inner_iterations"],
            max_outer=campaign_args["max_outer"],
            stride=campaign_args["stride"]))
        assert by_kwargs.trials == by_spec.trials

    def test_problem_spec_and_problem_object_agree(self, campaign_args):
        by_object = api.run_campaign(poisson_problem(grid_n=8),
                                     CampaignSpec(**campaign_args))
        by_spec = api.run_campaign(spec=CampaignSpec(problem="poisson:8",
                                                     **campaign_args))
        assert by_object.trials == by_spec.trials

    def test_both_or_neither_problem_rejected(self, poisson):
        with pytest.raises(ValueError, match="exactly one"):
            api.run_campaign(poisson, CampaignSpec(problem="poisson:8"))
        with pytest.raises(ValueError, match="no problem"):
            api.run_campaign(spec=CampaignSpec())

    def test_solver_inner_maxiter_takes_effect(self, poisson):
        """The advertised `--set solver.inner.maxiter=N` override must not be
        silently clobbered by the campaign-level default."""
        from repro.specs import apply_overrides

        spec = apply_overrides(CampaignSpec(max_outer=30),
                               {"solver.inner.maxiter": 7})
        campaign = FaultCampaign.from_spec(spec, problem=poisson)
        assert campaign.inner_iterations == 7
        assert campaign.params.inner.maxiter == 7
        legacy = FaultCampaign(poisson, inner_iterations=7, max_outer=30)
        assert campaign.run(stride=9).trials == legacy.run(stride=9).trials

    def test_solver_outer_budget_takes_effect(self, poisson):
        spec = CampaignSpec(solver=SolveSpec(method="ft_gmres", max_outer=20))
        campaign = FaultCampaign.from_spec(spec, problem=poisson)
        assert campaign.max_outer == 20
        assert campaign.params.outer.max_outer == 20

    def test_conflicting_budgets_rejected(self, poisson):
        from repro.specs import SpecError

        spec = CampaignSpec(inner_iterations=10,
                            solver=SolveSpec(method="ft_gmres",
                                             inner=SolveSpec(method="gmres",
                                                             maxiter=7)))
        with pytest.raises(SpecError, match="solver.inner.maxiter"):
            FaultCampaign.from_spec(spec, problem=poisson)

    def test_solver_inner_detector_takes_effect(self, poisson):
        """An inner detector configured via the solver spec must actually
        detect (not be clobbered by the campaign-level default of None)."""
        spec = CampaignSpec(
            inner_iterations=5, max_outer=25, locations=(1,),
            solver=SolveSpec(method="ft_gmres",
                             inner=SolveSpec(method="gmres", tol=0.0,
                                             detector="bound",
                                             detector_response="zero")))
        result = api.run_campaign(poisson, spec)
        assert result.detector_enabled
        large = [t for t in result.trials if t.fault_class == "large"]
        assert all(t.faults_detected > 0 for t in large)
        legacy = api.run_campaign(poisson, CampaignSpec(
            inner_iterations=5, max_outer=25, locations=(1,),
            detector="bound", detector_response="zero"))
        assert result.trials == legacy.trials

    def test_solver_inner_explicit_flag_response_honored(self, poisson):
        """detector_response='flag' set on solver.inner must survive (count
        detections without filtering), not be swapped for the campaign
        default 'zero'."""
        spec = CampaignSpec(
            inner_iterations=5, max_outer=25, locations=(1,),
            solver=SolveSpec(method="ft_gmres",
                             inner=SolveSpec(method="gmres", tol=0.0,
                                             detector="bound",
                                             detector_response="flag")))
        campaign = FaultCampaign.from_spec(spec, problem=poisson)
        assert campaign.detector_response == "flag"
        legacy = FaultCampaign(poisson, inner_iterations=5, max_outer=25,
                               detector="bound", detector_response="flag")
        assert (campaign.run(locations=[1]).trials
                == legacy.run(locations=[1]).trials)

    def test_run_fault_sweep_rejects_conflicting_problem_spec(self, poisson):
        from repro.experiments.figure34 import run_fault_sweep
        from repro.specs import SpecError

        with pytest.raises(SpecError, match="problem"):
            run_fault_sweep(poisson, CampaignSpec(problem="circuit:50"))

    def test_conflicting_detectors_rejected(self, poisson):
        from repro.specs import SpecError

        spec = CampaignSpec(
            detector="nonfinite",
            solver=SolveSpec(method="ft_gmres",
                             inner=SolveSpec(method="gmres", tol=0.0,
                                             detector="bound")))
        with pytest.raises(SpecError, match="solver.inner.detector"):
            FaultCampaign.from_spec(spec, problem=poisson)

    def test_cg_resolves_preconditioner_spec(self, poisson):
        from repro.precond.jacobi import JacobiPreconditioner

        by_spec = api.solve(poisson.A, poisson.b, "cg", tol=1e-10,
                            preconditioner="jacobi")
        legacy = cg(poisson.A, poisson.b, tol=1e-10,
                    preconditioner=JacobiPreconditioner(poisson.A))
        assert_solver_results_identical(legacy, by_spec)

    def test_fgmres_parameter_defaults_per_method(self):
        assert SolveSpec(method="fgmres").to_fgmres_parameters().max_outer == 50
        assert SolveSpec(method="ft_gmres").to_ftgmres_parameters().outer.max_outer == 100

    def test_inner_detector_resolved_once(self, poisson, monkeypatch):
        """String detector specs on the inner solve resolve once per nested
        solve, not once per inner GMRES call."""
        import repro.registry as registry_mod

        calls = {"n": 0}
        original = registry_mod.resolve_detector

        def counting(spec, **kwargs):
            if isinstance(spec, (str, dict)):
                calls["n"] += 1
            return original(spec, **kwargs)

        import sys

        monkeypatch.setattr(registry_mod, "resolve_detector", counting)
        # repro.core.gmres the *module* (the package attribute is shadowed
        # by the function of the same name).
        monkeypatch.setattr(sys.modules["repro.core.gmres"],
                            "resolve_detector", counting)
        api.solve(poisson.A, poisson.b, "ft_gmres", max_outer=30,
                  inner={"method": "gmres", "tol": 0.0, "maxiter": 5,
                         "detector": "bound", "detector_response": "zero"})
        assert calls["n"] == 1


class TestJSONCampaignOnAllBackends:
    """A campaign defined purely as a JSON file, trial-identical per backend."""

    @pytest.fixture(scope="class")
    def spec_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("specs") / "campaign.json"
        CampaignSpec(problem="poisson:7", inner_iterations=5, max_outer=25,
                     stride=9, detector="bound").dump(path)
        return path

    @pytest.fixture(scope="class")
    def reference(self, spec_file):
        spec = CampaignSpec.load(spec_file)
        assert spec.exec.backend is None  # the file leaves execution open
        return api.run_campaign(spec=spec)

    @pytest.mark.parametrize("backend,knobs", [
        ("serial", {}),
        ("thread", {"workers": 2, "chunksize": 2}),
        ("process", {"workers": 2}),
        ("batched", {"batch_size": 4}),
    ])
    def test_backend_trial_identical(self, spec_file, reference, backend, knobs):
        spec = CampaignSpec.load(spec_file)
        spec = spec.replace(exec=spec.exec.replace(backend=backend, **knobs))
        result = api.run_campaign(spec=spec)
        assert result.failure_free_outer == reference.failure_free_outer
        assert len(result.trials) == len(reference.trials)
        for got, want in zip(result.trials, reference.trials):
            if backend == "batched":
                # The lockstep engine's contract: identical counts/statuses/
                # classification, residuals to ~1e-10 (bit-identical where
                # the reduction order matches).
                assert got.fault_class == want.fault_class
                assert got.aggregate_inner_iteration == want.aggregate_inner_iteration
                assert got.outer_iterations == want.outer_iterations
                assert got.status == want.status
                assert got.converged == want.converged
                assert got.faults_injected == want.faults_injected
                assert got.faults_detected == want.faults_detected
                assert got.residual_norm == pytest.approx(want.residual_norm,
                                                          rel=1e-9, abs=1e-12)
            else:
                assert got == want


# ====================================================================== #
# the common result schema
# ====================================================================== #
class TestResultSchema:
    def test_solver_result_schema(self, poisson):
        result = api.solve(poisson.A, poisson.b, "gmres", tol=1e-10)
        summary = result.summary()
        assert summary["kind"] == "solver"
        data = result.to_dict(include_solution=True)
        json.dumps(data)  # JSON-serializable end to end
        assert data["status"] == "converged"
        assert len(data["x"]) == poisson.n
        assert data["history"][0] >= data["history"][-1]

    def test_nested_result_schema(self, poisson):
        result = api.solve(poisson.A, poisson.b, "ft_gmres", max_outer=30,
                           inner={"method": "gmres", "tol": 0.0, "maxiter": 6})
        summary = result.summary()
        assert summary["kind"] == "nested_solver"
        data = result.to_dict()
        json.dumps(data)
        assert len(data["inner_results"]) == result.outer_iterations
        assert all(inner["kind"] == "solver" for inner in data["inner_results"])

    def test_campaign_and_trial_schema_round_trip(self, poisson):
        from repro.faults.campaign import CampaignResult

        result = api.run_campaign(poisson, inner_iterations=5, max_outer=25,
                                  stride=13)
        data = result.to_dict()
        json.dumps(data)
        assert data["kind"] == "campaign"
        assert all(t["kind"] == "trial" for t in data["trials"])
        rebuilt = CampaignResult.from_dict(data)
        assert rebuilt.trials == result.trials
        assert rebuilt.summary() == result.summary()

    def test_common_keys_across_kinds(self, poisson):
        """Every result kind shares the summary core: kind/status/converged."""
        solver = api.solve(poisson.A, poisson.b, "gmres").summary()
        nested = api.solve(poisson.A, poisson.b, "ft_gmres",
                           inner={"method": "gmres", "tol": 0.0,
                                  "maxiter": 5}).summary()
        campaign = api.run_campaign(poisson, inner_iterations=5, max_outer=25,
                                    locations=[1])
        trial = campaign.trials[0].summary()
        for summary in (solver, nested, trial):
            assert {"kind", "status", "converged"} <= set(summary)


# ====================================================================== #
# API-surface snapshot
# ====================================================================== #
class TestAPISurface:
    MODULES = ("repro.api", "repro.specs", "repro.registry")

    def surface(self) -> dict:
        import importlib

        return {name: sorted(importlib.import_module(name).__all__)
                for name in self.MODULES}

    def test_all_exports_exist(self):
        import importlib

        for name in self.MODULES:
            module = importlib.import_module(name)
            for symbol in module.__all__:
                assert hasattr(module, symbol), f"{name}.{symbol} is exported but missing"

    def test_surface_matches_manifest(self):
        manifest_path = DATA_DIR / "api_surface.json"
        manifest = json.loads(manifest_path.read_text())
        surface = self.surface()
        assert surface == manifest, (
            "public API surface changed; if intentional, regenerate the "
            "manifest with:\n  python -c \"import json; from tests.test_api "
            "import TestAPISurface; print(json.dumps("
            "TestAPISurface().surface(), indent=2))\" > tests/data/api_surface.json"
        )
