"""Unit tests for injection schedules, the injector, sandbox, and wrappers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.injector import FaultInjector, NullInjector
from repro.faults.models import ScalingFault, ZeroFault
from repro.faults.sandbox import Sandbox, reliable_region
from repro.faults.schedule import InjectionSchedule, Persistence
from repro.faults.targets import FaultyOperator, FaultyPreconditioner
from repro.precond.jacobi import JacobiPreconditioner


def ctx(**overrides):
    """A complete injection context with sensible defaults."""
    base = dict(outer_iteration=0, inner_solve_index=0, inner_iteration=0,
                aggregate_inner_iteration=0, mgs_index=0, mgs_length=4)
    base.update(overrides)
    return base


class TestSchedule:
    def test_site_matching(self):
        s = InjectionSchedule(site="hessenberg")
        assert s.matches("hessenberg", **ctx())
        assert not s.matches("spmv", **ctx())
        assert InjectionSchedule(site="*").matches("spmv", **ctx())

    def test_aggregate_iteration_matching(self):
        s = InjectionSchedule(aggregate_inner_iteration=7)
        assert s.matches("hessenberg", **ctx(aggregate_inner_iteration=7))
        assert not s.matches("hessenberg", **ctx(aggregate_inner_iteration=8))

    def test_outer_and_inner_matching(self):
        s = InjectionSchedule(outer_iteration=2, inner_iteration=3, mgs_position=None)
        assert s.matches("hessenberg", **ctx(outer_iteration=2, inner_iteration=3))
        assert not s.matches("hessenberg", **ctx(outer_iteration=1, inner_iteration=3))
        assert not s.matches("hessenberg", **ctx(outer_iteration=2, inner_iteration=0))

    def test_mgs_first_last(self):
        first = InjectionSchedule(mgs_position="first")
        last = InjectionSchedule(mgs_position="last")
        assert first.matches("hessenberg", **ctx(mgs_index=0, mgs_length=5))
        assert not first.matches("hessenberg", **ctx(mgs_index=4, mgs_length=5))
        assert last.matches("hessenberg", **ctx(mgs_index=4, mgs_length=5))
        assert not last.matches("hessenberg", **ctx(mgs_index=0, mgs_length=5))
        # With a single coefficient, first and last coincide.
        assert last.matches("hessenberg", **ctx(mgs_index=0, mgs_length=1))

    def test_mgs_explicit_index(self):
        s = InjectionSchedule(mgs_position=2)
        assert s.matches("hessenberg", **ctx(mgs_index=2))
        assert not s.matches("hessenberg", **ctx(mgs_index=1))

    def test_mgs_any(self):
        s = InjectionSchedule(mgs_position=None)
        assert s.matches("hessenberg", **ctx(mgs_index=3))

    def test_invalid_mgs_position(self):
        with pytest.raises(ValueError):
            InjectionSchedule(mgs_position="middle")

    def test_persistence_coercion(self):
        assert InjectionSchedule(persistence="sticky").persistence is Persistence.STICKY
        with pytest.raises(ValueError):
            InjectionSchedule(persistence="forever")

    def test_transient_caps_max_injections(self):
        s = InjectionSchedule(persistence="transient")
        assert s.max_injections == 1

    def test_describe(self):
        s = InjectionSchedule(aggregate_inner_iteration=12, mgs_position="last")
        text = s.describe()
        assert "12" in text and "last" in text and "transient" in text

    def test_ignores_unknown_context(self):
        s = InjectionSchedule()
        assert s.matches("hessenberg", **ctx(), future_field=123)


class TestInjector:
    def test_transient_fires_once(self):
        inj = FaultInjector(ScalingFault(2.0), InjectionSchedule(mgs_position=None))
        assert inj.corrupt_scalar("hessenberg", 1.0, **ctx()) == 2.0
        assert inj.corrupt_scalar("hessenberg", 1.0, **ctx()) == 1.0
        assert inj.injections_performed == 1

    def test_persistent_fires_every_time(self):
        inj = FaultInjector(ScalingFault(2.0),
                            InjectionSchedule(mgs_position=None, persistence="persistent"))
        for _ in range(4):
            assert inj.corrupt_scalar("hessenberg", 1.0, **ctx()) == 2.0
        assert inj.injections_performed == 4

    def test_sticky_fires_bounded_number(self):
        inj = FaultInjector(ScalingFault(2.0),
                            InjectionSchedule(mgs_position=None, persistence="sticky",
                                              sticky_count=2))
        results = [inj.corrupt_scalar("hessenberg", 1.0, **ctx()) for _ in range(5)]
        assert results == [2.0, 2.0, 1.0, 1.0, 1.0]

    def test_max_injections_cap(self):
        inj = FaultInjector(ScalingFault(2.0),
                            InjectionSchedule(mgs_position=None, persistence="persistent",
                                              max_injections=2))
        results = [inj.corrupt_scalar("hessenberg", 1.0, **ctx()) for _ in range(4)]
        assert results.count(2.0) == 2

    def test_disabled_injector(self):
        inj = FaultInjector(ScalingFault(2.0), InjectionSchedule(mgs_position=None),
                            enabled=False)
        assert inj.corrupt_scalar("hessenberg", 1.0, **ctx()) == 1.0
        assert inj.injections_performed == 0

    def test_non_matching_site_ignored(self):
        inj = FaultInjector(ScalingFault(2.0), InjectionSchedule(site="spmv"))
        assert inj.corrupt_scalar("hessenberg", 1.0, **ctx()) == 1.0

    def test_record_contents(self):
        inj = FaultInjector(ScalingFault(3.0), InjectionSchedule(mgs_position=None))
        inj.corrupt_scalar("hessenberg", 2.0,
                           **ctx(outer_iteration=4, inner_solve_index=4, inner_iteration=6,
                                 aggregate_inner_iteration=106, mgs_index=2))
        rec = inj.records[0]
        assert rec.original == 2.0 and rec.corrupted == 6.0
        assert rec.outer_iteration == 4
        assert rec.aggregate_inner_iteration == 106
        assert rec.mgs_index == 2

    def test_reset_allows_reuse(self):
        inj = FaultInjector(ScalingFault(2.0), InjectionSchedule(mgs_position=None))
        inj.corrupt_scalar("hessenberg", 1.0, **ctx())
        inj.reset()
        assert inj.injections_performed == 0
        assert inj.corrupt_scalar("hessenberg", 1.0, **ctx()) == 2.0

    def test_vector_corruption_specific_index(self):
        inj = FaultInjector(ZeroFault(), InjectionSchedule(site="spmv", mgs_position=None),
                            vector_index=2)
        out = inj.corrupt_vector("spmv", np.array([1.0, 2.0, 3.0, 4.0]), **ctx())
        np.testing.assert_array_equal(out, [1.0, 2.0, 0.0, 4.0])
        assert inj.records[0].vector_index == 2

    def test_vector_not_copied_when_not_firing(self):
        inj = FaultInjector(ZeroFault(), InjectionSchedule(site="spmv"))
        vec = np.ones(3)
        out = inj.corrupt_vector("hessenberg_wrong_site", vec, **ctx())
        assert out is vec

    def test_sandbox_gating(self):
        sandbox = Sandbox()
        inj = FaultInjector(ScalingFault(2.0), InjectionSchedule(mgs_position=None),
                            sandbox=sandbox)
        assert inj.corrupt_scalar("hessenberg", 1.0, **ctx()) == 1.0  # outside sandbox
        with sandbox:
            assert inj.corrupt_scalar("hessenberg", 1.0, **ctx()) == 2.0

    def test_type_validation(self):
        with pytest.raises(TypeError):
            FaultInjector("not a model", InjectionSchedule())
        with pytest.raises(TypeError):
            FaultInjector(ScalingFault(2.0), "not a schedule")

    def test_null_injector(self):
        inj = NullInjector()
        assert inj.corrupt_scalar("hessenberg", 5.0, **ctx()) == 5.0
        vec = np.ones(3)
        assert inj.corrupt_vector("spmv", vec, **ctx()) is vec


class TestSandbox:
    def test_nesting(self):
        s = Sandbox()
        with s:
            with s:
                assert s.active
            assert s.active
        assert not s.active
        assert s.entries == 2

    def test_operation_budget(self):
        s = Sandbox(max_operations=3)
        with s:
            s.tick(2)
            with pytest.raises(TimeoutError):
                s.tick(2)

    def test_tick_outside_sandbox_ignored(self):
        s = Sandbox(max_operations=1)
        s.tick(100)  # not active: no budget accounting
        assert s.operations == 0

    def test_reliable_region_suspends(self):
        s = Sandbox()
        inj = FaultInjector(ScalingFault(2.0),
                            InjectionSchedule(mgs_position=None, persistence="persistent"),
                            sandbox=s)
        with s:
            assert inj.corrupt_scalar("hessenberg", 1.0, **ctx()) == 2.0
            with reliable_region(s):
                assert inj.corrupt_scalar("hessenberg", 1.0, **ctx()) == 1.0
            assert inj.corrupt_scalar("hessenberg", 1.0, **ctx()) == 2.0

    def test_reliable_region_with_none(self):
        with reliable_region(None):
            pass  # must not raise

    def test_reset_counters(self):
        s = Sandbox()
        with s:
            s.tick()
        s.reset()
        assert s.entries == 0 and s.operations == 0


class TestTargets:
    def test_faulty_operator_single_fault(self, poisson_small, rng):
        x = rng.standard_normal(poisson_small.shape[0])
        injector = FaultInjector(ScalingFault(100.0),
                                 InjectionSchedule(site="spmv", aggregate_inner_iteration=1,
                                                   mgs_position=None),
                                 vector_index=0)
        faulty = FaultyOperator(poisson_small, injector)
        clean = poisson_small.matvec(x)
        np.testing.assert_array_equal(faulty.matvec(x), clean)      # call 0: no fault
        corrupted = faulty.matvec(x)                                 # call 1: fault
        assert corrupted[0] == pytest.approx(clean[0] * 100.0)
        np.testing.assert_array_equal(corrupted[1:], clean[1:])
        np.testing.assert_array_equal(faulty.matvec(x), clean)      # transient: done

    def test_faulty_operator_rmatvec_clean(self, poisson_small, rng):
        x = rng.standard_normal(poisson_small.shape[0])
        injector = FaultInjector(ScalingFault(100.0),
                                 InjectionSchedule(site="spmv", mgs_position=None))
        faulty = FaultyOperator(poisson_small, injector)
        np.testing.assert_array_equal(faulty.rmatvec(x), poisson_small.rmatvec(x))

    def test_faulty_preconditioner(self, poisson_small, rng):
        r = rng.standard_normal(poisson_small.shape[0])
        jac = JacobiPreconditioner(poisson_small)
        injector = FaultInjector(ZeroFault(),
                                 InjectionSchedule(site="precond", aggregate_inner_iteration=0,
                                                   mgs_position=None),
                                 vector_index=1)
        faulty = FaultyPreconditioner(jac, injector)
        out = faulty.apply(r)
        clean = jac.apply(r)
        assert out[1] == 0.0
        np.testing.assert_array_equal(np.delete(out, 1), np.delete(clean, 1))

    def test_faulty_preconditioner_from_callable(self, rng):
        injector = FaultInjector(ZeroFault(), InjectionSchedule(site="precond",
                                                                mgs_position=None))
        faulty = FaultyPreconditioner(lambda r: 2.0 * r, injector)
        out = faulty.apply(np.ones(4))
        assert np.count_nonzero(out == 0.0) == 1

    def test_faulty_preconditioner_type_checked(self):
        injector = FaultInjector(ZeroFault(), InjectionSchedule(site="precond"))
        with pytest.raises(TypeError):
            FaultyPreconditioner(42, injector)
