"""Unit and integration tests for the nested FT-GMRES solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ftgmres import FTGMRESParameters, ft_gmres
from repro.core.gmres import GMRESParameters
from repro.core.fgmres import FGMRESParameters
from repro.core.detectors import HessenbergBoundDetector
from repro.core.status import SolverStatus
from repro.faults.injector import FaultInjector
from repro.faults.models import ScalingFault
from repro.faults.schedule import InjectionSchedule
from repro.faults.sandbox import Sandbox
from repro.sparse.norms import frobenius_norm


class TestFailureFree:
    def test_converges_on_poisson(self, poisson_problem_tiny):
        p = poisson_problem_tiny
        result = ft_gmres(p.A, p.b, inner_iterations=10, max_outer=40)
        assert result.converged
        assert p.residual_norm(result.x) <= 1e-7 * np.linalg.norm(p.b)

    def test_converges_on_circuit(self, circuit_problem_tiny):
        p = circuit_problem_tiny
        result = ft_gmres(p.A, p.b, inner_iterations=20, max_outer=80)
        assert result.converged

    def test_inner_results_bookkeeping(self, poisson_problem_tiny):
        p = poisson_problem_tiny
        result = ft_gmres(p.A, p.b, inner_iterations=8, max_outer=40)
        assert len(result.inner_results) == result.outer_iterations
        assert result.total_inner_iterations == 8 * result.outer_iterations
        assert all(r.iterations == 8 for r in result.inner_results)

    def test_outer_history_recorded(self, poisson_problem_tiny):
        p = poisson_problem_tiny
        result = ft_gmres(p.A, p.b, inner_iterations=10, max_outer=40)
        assert len(result.history) == result.outer_iterations + 1
        assert result.history.is_monotone_nonincreasing(rtol=1e-8)

    def test_faster_than_plain_gmres_in_outer_iterations(self, poisson_problem_tiny):
        from repro.core.gmres import gmres

        p = poisson_problem_tiny
        nested = ft_gmres(p.A, p.b, inner_iterations=10, max_outer=40)
        plain = gmres(p.A, p.b, tol=1e-8, maxiter=400)
        assert nested.outer_iterations < plain.iterations

    def test_params_override_precedence(self, poisson_problem_tiny):
        p = poisson_problem_tiny
        params = FTGMRESParameters(
            outer=FGMRESParameters(tol=1e-4, max_outer=5),
            inner=GMRESParameters(tol=0.0, maxiter=3),
        )
        result = ft_gmres(p.A, p.b, params=params, inner_iterations=6, max_outer=30,
                          outer_tol=1e-8)
        # keyword overrides win
        assert all(r.iterations == 6 for r in result.inner_results)
        assert result.converged

    def test_default_inner_budget_is_25(self):
        assert FTGMRESParameters().inner_iterations == 25


class TestWithFaults:
    def _injector(self, factor, location, position="first"):
        return FaultInjector(ScalingFault(factor),
                             InjectionSchedule(aggregate_inner_iteration=location,
                                               mgs_position=position))

    def test_exactly_one_fault_injected(self, poisson_problem_tiny):
        p = poisson_problem_tiny
        injector = self._injector(1e150, 3)
        result = ft_gmres(p.A, p.b, inner_iterations=10, max_outer=40, injector=injector)
        assert injector.injections_performed == 1
        assert result.faults_injected == 1

    def test_runs_through_large_fault(self, poisson_problem_tiny):
        """The headline claim: FT-GMRES converges despite an enormous SDC."""
        p = poisson_problem_tiny
        clean = ft_gmres(p.A, p.b, inner_iterations=10, max_outer=60)
        faulty = ft_gmres(p.A, p.b, inner_iterations=10, max_outer=60,
                          injector=self._injector(1e150, 2))
        assert faulty.converged
        assert p.residual_norm(faulty.x) <= 1e-7 * np.linalg.norm(p.b)
        # Bounded penalty: a handful of extra outer iterations at most.
        assert faulty.outer_iterations <= clean.outer_iterations + 5

    @pytest.mark.parametrize("factor", [10 ** -0.5, 1e-300])
    def test_runs_through_small_faults(self, poisson_problem_tiny, factor):
        p = poisson_problem_tiny
        clean = ft_gmres(p.A, p.b, inner_iterations=10, max_outer=60)
        faulty = ft_gmres(p.A, p.b, inner_iterations=10, max_outer=60,
                          injector=self._injector(factor, 5))
        assert faulty.converged
        assert faulty.outer_iterations <= clean.outer_iterations + 3

    def test_fault_location_recorded(self, poisson_problem_tiny):
        p = poisson_problem_tiny
        injector = self._injector(1e150, 13)
        ft_gmres(p.A, p.b, inner_iterations=10, max_outer=40, injector=injector)
        record = injector.records[0]
        assert record.aggregate_inner_iteration == 13
        assert record.inner_solve_index == 1      # 13 // 10
        assert record.inner_iteration == 3        # 13 % 10
        assert record.mgs_index == 0              # first MGS position

    def test_faults_only_inside_sandbox(self, poisson_problem_tiny):
        """The sandbox model: the injector is inert outside inner solves."""
        p = poisson_problem_tiny
        injector = self._injector(1e150, 0)
        sandbox = Sandbox("test-inner")
        ft_gmres(p.A, p.b, inner_iterations=10, max_outer=40, injector=injector,
                 sandbox=sandbox)
        assert injector.sandbox is sandbox
        assert sandbox.entries > 0
        assert not sandbox.active  # deactivated after the solve
        # Trying to corrupt outside the sandbox has no effect now.
        assert injector.corrupt_scalar("hessenberg", 1.0, aggregate_inner_iteration=0,
                                       mgs_index=0, mgs_length=1) == 1.0

    def test_detector_limits_damage(self, poisson_problem_tiny):
        """With the bound detector + filtering, large faults cost no more than
        without the detector (the paper's Section VII-E claim)."""
        p = poisson_problem_tiny
        detector = HessenbergBoundDetector(frobenius_norm(p.A))
        worst_with, worst_without = 0, 0
        for loc in (0, 1, 5, 11):
            unprotected = ft_gmres(
                p.A, p.b, inner_iterations=10, max_outer=60,
                injector=self._injector(1e150, loc))
            params = FTGMRESParameters(
                inner=GMRESParameters(tol=0.0, maxiter=10, detector=detector,
                                      detector_response="zero"))
            protected = ft_gmres(p.A, p.b, inner_iterations=10, max_outer=60,
                                 params=params, injector=self._injector(1e150, loc))
            assert protected.converged
            worst_with = max(worst_with, protected.outer_iterations)
            worst_without = max(worst_without, unprotected.outer_iterations)
        assert worst_with <= worst_without

    def test_detection_events_propagate_to_nested_result(self, poisson_problem_tiny):
        p = poisson_problem_tiny
        detector = HessenbergBoundDetector(frobenius_norm(p.A))
        params = FTGMRESParameters(
            inner=GMRESParameters(tol=0.0, maxiter=10, detector=detector,
                                  detector_response="zero"))
        result = ft_gmres(p.A, p.b, params=params, max_outer=60,
                          injector=self._injector(1e150, 4))
        assert result.faults_detected >= 1
        assert result.faults_injected == 1

    def test_outer_never_silently_wrong(self, circuit_problem_tiny):
        """Whatever the fault does, a CONVERGED status implies a small true residual."""
        p = circuit_problem_tiny
        for loc in (0, 7, 19):
            result = ft_gmres(p.A, p.b, inner_iterations=15, max_outer=80,
                              injector=self._injector(1e150, loc))
            if result.status is SolverStatus.CONVERGED:
                assert p.residual_norm(result.x) <= 1e-7 * np.linalg.norm(p.b)
