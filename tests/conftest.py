"""Shared fixtures for the test suite.

Fixtures are deliberately small (tens to a few hundred unknowns) so the full
suite runs in seconds; the paper-scale configurations are exercised by the
benchmark harness instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gallery.poisson import poisson1d, poisson2d
from repro.gallery.convection_diffusion import convection_diffusion_2d
from repro.gallery.problems import circuit_problem, poisson_problem
from repro.gallery.random_sparse import diagonally_dominant, tridiagonal
from repro.sparse.csr import CSRMatrix


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_dense(rng) -> np.ndarray:
    """A well-conditioned dense 12x12 matrix."""
    A = rng.standard_normal((12, 12))
    return A + 12.0 * np.eye(12)


@pytest.fixture
def poisson_small() -> CSRMatrix:
    """2-D Poisson matrix on a 6x6 grid (36 rows, SPD)."""
    return poisson2d(6)


@pytest.fixture
def poisson_medium() -> CSRMatrix:
    """2-D Poisson matrix on a 12x12 grid (144 rows, SPD)."""
    return poisson2d(12)


@pytest.fixture
def nonsym_small() -> CSRMatrix:
    """A small nonsymmetric convection-diffusion matrix (36 rows)."""
    return convection_diffusion_2d(6)


@pytest.fixture
def tridiag_nonsym() -> CSRMatrix:
    """A nonsymmetric Toeplitz tridiagonal matrix."""
    return tridiagonal(30, lower=-1.0, diag=3.0, upper=-2.0)


@pytest.fixture
def diag_dom_small() -> CSRMatrix:
    """A strictly diagonally dominant random matrix (50 rows)."""
    return diagonally_dominant(50, density=0.1, dominance=3.0, seed=7)


@pytest.fixture
def poisson_problem_tiny():
    """The paper's SPD problem at tiny scale (100 rows)."""
    return poisson_problem(grid_n=10)


@pytest.fixture
def circuit_problem_tiny():
    """The paper's nonsymmetric problem surrogate at tiny scale (200 rows)."""
    return circuit_problem(200)
