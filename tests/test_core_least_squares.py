"""Unit tests for the projected least-squares policies (Section VI-D)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.least_squares import (
    LeastSquaresPolicy,
    solve_projected_lsq,
    solve_rank_revealing,
    solve_triangular,
)


class TestPolicyCoercion:
    def test_from_string(self):
        assert LeastSquaresPolicy.coerce("standard") is LeastSquaresPolicy.STANDARD
        assert LeastSquaresPolicy.coerce("HYBRID") is LeastSquaresPolicy.HYBRID
        assert LeastSquaresPolicy.coerce("rank_revealing") is LeastSquaresPolicy.RANK_REVEALING

    def test_passthrough(self):
        assert LeastSquaresPolicy.coerce(LeastSquaresPolicy.HYBRID) is LeastSquaresPolicy.HYBRID

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            LeastSquaresPolicy.coerce("pivoted_qr")


class TestTriangularSolve:
    def test_matches_numpy(self, rng):
        R = np.triu(rng.standard_normal((6, 6))) + 6.0 * np.eye(6)
        rhs = rng.standard_normal(6)
        np.testing.assert_allclose(solve_triangular(R, rhs), np.linalg.solve(R, rhs), rtol=1e-12)

    def test_singular_produces_nonfinite(self):
        R = np.array([[1.0, 2.0], [0.0, 0.0]])
        y = solve_triangular(R, np.array([1.0, 1.0]))
        assert not np.all(np.isfinite(y))

    def test_inconsistent_shapes(self):
        with pytest.raises(ValueError):
            solve_triangular(np.eye(3), np.ones(2))


class TestRankRevealing:
    def test_full_rank_matches_lstsq(self, rng):
        M = rng.standard_normal((7, 5))
        rhs = rng.standard_normal(7)
        y, rank = solve_rank_revealing(M, rhs)
        expected, *_ = np.linalg.lstsq(M, rhs, rcond=None)
        assert rank == 5
        np.testing.assert_allclose(y, expected, rtol=1e-10)

    def test_rank_deficient_minimum_norm(self):
        # Columns 0 and 1 identical: infinitely many solutions; the truncated
        # SVD must return the minimum-norm one.
        M = np.array([[1.0, 1.0], [1.0, 1.0], [0.0, 0.0]])
        rhs = np.array([2.0, 2.0, 0.0])
        y, rank = solve_rank_revealing(M, rhs, tol=1e-12)
        assert rank == 1
        np.testing.assert_allclose(y, [1.0, 1.0], rtol=1e-12)
        # Any solution satisfies M y = rhs; minimum norm is [1, 1].
        np.testing.assert_allclose(M @ y, rhs, rtol=1e-12)

    def test_nonfinite_input_sanitized(self):
        M = np.array([[np.inf, 0.0], [0.0, 1.0], [0.0, 0.0]])
        rhs = np.array([1.0, 1.0, np.nan])
        y, rank = solve_rank_revealing(M, rhs)
        assert np.all(np.isfinite(y))

    def test_zero_matrix(self):
        y, rank = solve_rank_revealing(np.zeros((3, 2)), np.ones(3))
        assert rank == 0
        np.testing.assert_array_equal(y, np.zeros(2))

    def test_empty_system(self):
        y, rank = solve_rank_revealing(np.zeros((1, 0)), np.ones(1))
        assert rank == 0
        assert y.shape == (0,)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            solve_rank_revealing(np.ones((3, 2)), np.ones(2))

    def test_truncation_bounds_solution(self):
        # A nearly singular triangular factor: the standard solve blows up,
        # the truncated solve stays bounded by sigma_max / smallest kept sv.
        R = np.array([[1.0, 1.0], [0.0, 1e-300]])
        rhs = np.array([1.0, 1.0])
        y_std = solve_triangular(R, rhs)
        assert np.abs(y_std[np.isfinite(y_std)]).max() > 1e100 or not np.all(np.isfinite(y_std))
        y_rr, rank = solve_rank_revealing(R, rhs, tol=1e-12)
        assert rank == 1
        assert np.abs(y_rr).max() < 10.0


class TestProjectedPolicyDispatch:
    def _well_conditioned(self, rng, k=5):
        R = np.triu(rng.standard_normal((k, k))) + k * np.eye(k)
        g = rng.standard_normal(k + 1)
        return R, g

    def test_standard(self, rng):
        R, g = self._well_conditioned(rng)
        y, info = solve_projected_lsq(R, g, policy="standard")
        np.testing.assert_allclose(y, np.linalg.solve(R, g[:5]), rtol=1e-12)
        assert info["policy"] == "standard"
        assert info["finite"]
        assert not info["fallback"]

    def test_standard_reports_nonfinite(self):
        R = np.array([[1.0, 0.0], [0.0, 0.0]])
        g = np.array([1.0, 1.0, 0.0])
        y, info = solve_projected_lsq(R, g, policy="standard")
        assert not info["finite"]

    def test_hybrid_no_fallback_when_finite(self, rng):
        R, g = self._well_conditioned(rng)
        y_std, _ = solve_projected_lsq(R, g, policy="standard")
        y_hyb, info = solve_projected_lsq(R, g, policy="hybrid")
        np.testing.assert_allclose(y_hyb, y_std)
        assert not info["fallback"]

    def test_hybrid_falls_back_on_singular(self):
        R = np.array([[1.0, 1.0], [0.0, 0.0]])
        g = np.array([1.0, 1.0, 0.0])
        y, info = solve_projected_lsq(R, g, policy="hybrid")
        assert info["fallback"]
        assert np.all(np.isfinite(y))

    def test_rank_revealing_on_triangular_factor(self, rng):
        R, g = self._well_conditioned(rng)
        y_rr, info = solve_projected_lsq(R, g, policy="rank_revealing")
        np.testing.assert_allclose(y_rr, np.linalg.solve(R, g[:5]), rtol=1e-10)
        assert info["rank"] == 5

    def test_rank_revealing_with_full_hessenberg(self, rng):
        # Solving with H and beta e1 must agree with solving R y = g.
        from repro.core.hessenberg import HessenbergMatrix

        k = 6
        beta = 3.0
        hess = HessenbergMatrix(k, beta=beta)
        for j in range(k):
            col = rng.standard_normal(j + 2)
            col[j + 1] = abs(col[j + 1]) + 0.5
            hess.add_column(col)
        y_r, _ = solve_projected_lsq(hess.R, hess.g, policy="rank_revealing")
        y_h, _ = solve_projected_lsq(hess.R, hess.g, policy="rank_revealing",
                                     H=hess.H, beta=beta)
        np.testing.assert_allclose(y_h, y_r, rtol=1e-8, atol=1e-10)

    def test_hessenberg_without_beta_rejected(self, rng):
        R, g = self._well_conditioned(rng)
        with pytest.raises(ValueError, match="beta"):
            solve_projected_lsq(R, g, policy="rank_revealing", H=np.ones((6, 5)))


class TestIncrementalGivensQR:
    """The incremental factorization promised by the module docstring."""

    def _random_hessenberg(self, rng, k):
        H = np.zeros((k + 1, k))
        for j in range(k):
            H[: j + 2, j] = rng.standard_normal(j + 2)
        return H

    def test_matches_dense_qr(self, rng=np.random.default_rng(77)):
        from repro.core.least_squares import IncrementalGivensQR

        k, beta = 12, 3.5
        H = self._random_hessenberg(rng, k)
        qr = IncrementalGivensQR(k, beta)
        for j in range(k):
            qr.add_column(H[: j + 2, j])
        # R y = g must reproduce the dense least-squares solution.
        y = solve_triangular(qr.R, qr.g[:k])
        e1 = np.zeros(k + 1)
        e1[0] = beta
        y_ref, *_ = np.linalg.lstsq(H, e1, rcond=None)
        np.testing.assert_allclose(y, y_ref, rtol=1e-10, atol=1e-12)
        # |g_{k+1}| is the least-squares residual norm.
        np.testing.assert_allclose(qr.residual_estimate(),
                                   np.linalg.norm(H @ y_ref - e1), rtol=1e-10)

    def test_rotations_reused_not_refactored(self, rng=np.random.default_rng(7)):
        """Adding column k must leave the first k-1 columns of R untouched."""
        from repro.core.least_squares import IncrementalGivensQR

        k = 8
        H = self._random_hessenberg(rng, k)
        qr = IncrementalGivensQR(k, 1.0)
        for j in range(k - 1):
            qr.add_column(H[: j + 2, j])
        before = qr.R.copy()
        qr.add_column(H[: k + 1, k - 1])
        np.testing.assert_array_equal(qr.R[: k - 1, : k - 1], before)

    def test_solve_standard_preserves_nonfinite_propagation(self):
        """A singular R must yield Inf/NaN under STANDARD, exactly as before."""
        from repro.core.least_squares import IncrementalGivensQR

        qr = IncrementalGivensQR(2, 1.0)
        qr.add_column(np.array([1.0, 0.0]))          # R = [[1, 1], [0, 0]]
        qr.add_column(np.array([1.0, 0.0, 0.0]))
        y, info = qr.solve(policy=LeastSquaresPolicy.STANDARD)
        assert info["policy"] == "standard"
        assert not info["finite"]
        assert not np.all(np.isfinite(y))

    def test_overflow_capacity_guard(self):
        from repro.core.least_squares import IncrementalGivensQR

        qr = IncrementalGivensQR(1, 1.0)
        qr.add_column(np.array([1.0, 0.5]))
        with pytest.raises(RuntimeError):
            qr.add_column(np.array([1.0, 0.5, 0.25]))

    def test_hessenberg_matrix_delegates(self, rng=np.random.default_rng(5)):
        """HessenbergMatrix.solve_y must agree with solve_projected_lsq."""
        from repro.core.hessenberg import HessenbergMatrix

        k, beta = 6, 2.0
        H = self._random_hessenberg(rng, k)
        hess = HessenbergMatrix(k, beta)
        for j in range(k):
            hess.add_column(H[: j + 2, j])
        for policy in LeastSquaresPolicy:
            expected_H = H if policy is not LeastSquaresPolicy.STANDARD else None
            y_ref, info_ref = solve_projected_lsq(hess.R, hess.g, policy=policy,
                                                  H=expected_H, beta=beta)
            y, info = hess.solve_y(policy=policy)
            np.testing.assert_array_equal(y, y_ref)
            assert info == info_ref

    def test_wrong_length_column_rejected(self):
        from repro.core.least_squares import IncrementalGivensQR

        qr = IncrementalGivensQR(3, 1.0)
        with pytest.raises(ValueError):
            qr.add_column(np.array([1.0]))              # too short
        with pytest.raises(ValueError):
            qr.add_column(np.array([1.0, 0.5, 0.25]))   # too long (silent-truncation guard)
