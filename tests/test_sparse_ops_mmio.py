"""Unit tests for the functional sparse kernels and Matrix-Market I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sparse.csr import CSRMatrix
from repro.sparse.mmio import read_matrix_market, write_matrix_market
from repro.sparse.ops import (
    extract_diagonal,
    sparse_add,
    sparse_scale,
    spmv,
    spmv_transpose,
)


class TestOps:
    def test_spmv(self, poisson_small, rng):
        x = rng.standard_normal(poisson_small.shape[1])
        np.testing.assert_allclose(spmv(poisson_small, x), poisson_small.matvec(x))

    def test_spmv_transpose(self, nonsym_small, rng):
        x = rng.standard_normal(nonsym_small.shape[0])
        np.testing.assert_allclose(spmv_transpose(nonsym_small, x), nonsym_small.rmatvec(x))

    def test_sparse_add(self, poisson_small):
        doubled = sparse_add(poisson_small, poisson_small)
        np.testing.assert_allclose(doubled.todense(), 2.0 * poisson_small.todense())

    def test_sparse_scale(self, poisson_small):
        np.testing.assert_allclose(sparse_scale(poisson_small, -0.5).todense(),
                                   -0.5 * poisson_small.todense())

    def test_extract_diagonal(self, poisson_small):
        np.testing.assert_allclose(extract_diagonal(poisson_small),
                                   np.full(poisson_small.shape[0], 4.0))


class TestMatrixMarket:
    def test_roundtrip_general(self, tmp_path, rng):
        dense = rng.standard_normal((8, 6))
        dense[np.abs(dense) < 0.6] = 0.0
        m = CSRMatrix.from_dense(dense)
        path = tmp_path / "matrix.mtx"
        write_matrix_market(path, m, comment="round trip test")
        back = read_matrix_market(path)
        assert back.shape == m.shape
        np.testing.assert_allclose(back.todense(), dense, rtol=1e-15)

    def test_roundtrip_gzip(self, tmp_path, poisson_small):
        path = tmp_path / "matrix.mtx.gz"
        write_matrix_market(path, poisson_small)
        back = read_matrix_market(path)
        np.testing.assert_allclose(back.todense(), poisson_small.todense())

    def test_symmetric_storage(self, tmp_path):
        text = """%%MatrixMarket matrix coordinate real symmetric
% lower triangle only
3 3 4
1 1 2.0
2 1 -1.0
2 2 2.0
3 3 2.0
"""
        path = tmp_path / "sym.mtx"
        path.write_text(text)
        m = read_matrix_market(path)
        dense = m.todense()
        assert dense[0, 1] == dense[1, 0] == -1.0
        assert dense[2, 2] == 2.0

    def test_skew_symmetric_storage(self, tmp_path):
        text = """%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.0
"""
        path = tmp_path / "skew.mtx"
        path.write_text(text)
        dense = read_matrix_market(path).todense()
        assert dense[1, 0] == 3.0
        assert dense[0, 1] == -3.0

    def test_pattern_field(self, tmp_path):
        text = """%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 2
"""
        path = tmp_path / "pattern.mtx"
        path.write_text(text)
        dense = read_matrix_market(path).todense()
        np.testing.assert_allclose(dense, np.eye(2))

    def test_array_format(self, tmp_path):
        text = """%%MatrixMarket matrix array real general
2 2
1.0
2.0
3.0
4.0
"""
        path = tmp_path / "array.mtx"
        path.write_text(text)
        dense = read_matrix_market(path).todense()
        np.testing.assert_allclose(dense, [[1.0, 3.0], [2.0, 4.0]])

    def test_rejects_non_mm_file(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("this is not a matrix\n1 2 3\n")
        with pytest.raises(ValueError, match="banner"):
            read_matrix_market(path)

    def test_rejects_complex(self, tmp_path):
        path = tmp_path / "complex.mtx"
        path.write_text("%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1.0 2.0\n")
        with pytest.raises(ValueError, match="complex"):
            read_matrix_market(path)
