"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so
that editable installs (``pip install -e .``) work on offline machines whose
setuptools/pip tool-chain lacks the ``wheel`` package required by PEP 660
editable wheels.
"""

from setuptools import setup

setup()
