#!/usr/bin/env python
"""Reproduce Figure 3 (reduced scale) on the streaming results subsystem.

For every aggregate inner iteration of the nested FT-GMRES solve, this script
injects a single multiplicative SDC into the first (and then the last)
Modified Gram-Schmidt coefficient, for the paper's three fault classes, and
plots (in ASCII) the number of outer iterations needed to converge — the same
series as the paper's Figure 3.

It demonstrates the results subsystem end to end:

* trials **stream** to the terminal as the backends complete them (a
  ``console`` event sink);
* every trial is **checkpointed** into a run store (``runs/`` by default), so
  killing the script (Ctrl-C, SIGTERM, a crashed process) loses at most the
  trial in flight — rerunning resumes from where it stopped, and a completed
  sweep reloads instantly with zero new solves;
* the figure data is produced from the stored runs through the **query API**.

Run with:  python examples/poisson_fault_sweep.py [grid_n] [stride] [store]

``grid_n=100`` reproduces the paper's 10,000-row matrix (takes a few minutes);
the default ``grid_n=30`` finishes in well under a minute.
"""

from __future__ import annotations

import sys

from repro.api import run_campaign
from repro.experiments.figure34 import FigureSweep, sweep_run_id
from repro.gallery.problems import poisson_problem
from repro.results import RunStore
from repro.results.events import ConsoleSink
from repro.specs import CampaignSpec


def main(grid_n: int = 30, stride: int = 5, store_dir: str = "runs") -> None:
    problem = poisson_problem(grid_n)
    store = RunStore(store_dir)
    print(f"Running the Figure 3 sweep on a {grid_n}x{grid_n} Poisson grid "
          f"({grid_n**2} unknowns), injection-location stride {stride};")
    print(f"checkpointing every trial into {store.root}/ (interrupt + rerun "
          f"to resume).\n")

    panels = {}
    for position in ("first", "last"):
        spec = CampaignSpec(mgs_position=position, stride=stride)
        run_id = sweep_run_id(spec, problem.name, f"example-fig3-{position}")
        panels[position] = run_campaign(
            problem, spec,
            store=store, run_id=run_id, resume=True,   # resume=True: continue
            sink=ConsoleSink(every=25),                # or reload if complete
        )

    figure = FigureSweep(problem_name=problem.name,
                         first=panels["first"], last=panels["last"])
    print()
    print(figure.render(width=70, height=12))

    # The same questions, asked through the query API over the persisted run —
    # rerun this block any time without re-solving (store.query/load_result).
    campaign = panels["first"]
    query = campaign.query()
    print("\nQuery API, over the persisted run:")
    for fault_class, trials in query.group_by("fault_class").items():
        worst = int(trials.max("outer_iterations"))
        survived = trials.rate(lambda t: t.converged)
        print(f" * {fault_class:>10}: worst outer = {worst} "
              f"(failure-free {campaign.failure_free_outer}), "
              f"converged in {survived * 100:.0f}% of {len(trials)} trials, "
              f"mean wall time {trials.mean('elapsed') * 1e3:.1f} ms/trial")

    print("\nWhat to look for (compare with the paper's Figure 3):")
    print(" * large faults (x1e+150): a visible penalty for faults early in the solve,")
    print("   decaying to no penalty once the outer iteration has nearly converged;")
    print(" * small faults (x10^-0.5, x1e-300): almost every run converges in the")
    print("   failure-free number of outer iterations — the solver 'runs through' them;")
    print(" * the worst location is the start of the very first inner solve.")


if __name__ == "__main__":
    grid_n = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    stride = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    store_dir = sys.argv[3] if len(sys.argv) > 3 else "runs"
    main(grid_n, stride, store_dir)
