#!/usr/bin/env python
"""Reproduce Figure 3 (reduced scale): SDC sweep on the Poisson problem.

For every aggregate inner iteration of the nested FT-GMRES solve, this script
injects a single multiplicative SDC into the first (and then the last)
Modified Gram-Schmidt coefficient, for the paper's three fault classes, and
plots (in ASCII) the number of outer iterations needed to converge — the same
series as the paper's Figure 3.

Run with:  python examples/poisson_fault_sweep.py [grid_n] [stride]

``grid_n=100`` reproduces the paper's 10,000-row matrix (takes a few minutes);
the default ``grid_n=30`` finishes in well under a minute.
"""

from __future__ import annotations

import sys

from repro.experiments.figure34 import figure3


def main(grid_n: int = 30, stride: int = 5) -> None:
    print(f"Running the Figure 3 sweep on a {grid_n}x{grid_n} Poisson grid "
          f"({grid_n**2} unknowns), injection-location stride {stride} ...")
    figure = figure3(grid_n=grid_n, stride=stride, detector=None,
                     inner_iterations=25, max_outer=100)
    print()
    print(figure.render(width=70, height=12))

    print("\nWhat to look for (compare with the paper's Figure 3):")
    print(" * large faults (x1e+150): a visible penalty for faults early in the solve,")
    print("   decaying to no penalty once the outer iteration has nearly converged;")
    print(" * small faults (x10^-0.5, x1e-300): almost every run converges in the")
    print("   failure-free number of outer iterations — the solver 'runs through' them;")
    print(" * the worst location is the start of the very first inner solve.")


if __name__ == "__main__":
    grid_n = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    stride = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    main(grid_n, stride)
