#!/usr/bin/env python
"""Drive the campaign service end-to-end from Python.

This example starts a ``repro serve`` daemon on an ephemeral port, submits
the same campaign twice (watching the second POST dedupe onto the first
job), streams the job's live JSONL events, fetches the completed
:class:`repro.results.CampaignResult`, and shuts the daemon down with a
graceful SIGTERM drain.

Everything below also works against a daemon you started yourself::

    repro serve --store runs/ --port 8765 &
    python examples/service_client.py http://127.0.0.1:8765

With no argument the example is self-contained: it launches its own daemon
on a temporary store and cleans up after itself.

Run with:  python examples/service_client.py [url]
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

from repro.service import ServiceClient

#: A tiny campaign: 3 fault classes x 7 locations = 21 trials, ~1 s.
CAMPAIGN = {
    "problem": "poisson:8",
    "inner_iterations": 10,
    "max_outer": 30,
    "stride": 6,
}


def start_daemon(store: str) -> tuple[subprocess.Popen, str]:
    """Launch ``repro serve`` on port 0; return (process, base url)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--store", store, "--port", "0", "--max-jobs", "2"])
    info_path = os.path.join(store, "_jobs", "daemon.json")
    for _ in range(600):  # the daemon records its bound port once ready
        try:
            with open(info_path, "r", encoding="utf-8") as handle:
                info = json.load(handle)
            if info.get("pid") == proc.pid:
                return proc, f"http://{info['host']}:{info['port']}"
        except (FileNotFoundError, json.JSONDecodeError):
            pass
        time.sleep(0.05)
    raise RuntimeError("daemon did not come up")


def main() -> None:
    daemon = None
    if len(sys.argv) > 1:
        client = ServiceClient(sys.argv[1])
    else:
        store = tempfile.mkdtemp(prefix="repro-service-demo-")
        print(f"-- starting a daemon on a temporary store: {store}")
        daemon, url = start_daemon(store)
        client = ServiceClient(url)

    try:
        health = client.health()
        print(f"-- daemon ok: version {health['version']}, "
              f"max_jobs {health['max_jobs']}")

        # POST the campaign; job identity is the content fingerprint.
        record = client.submit(CAMPAIGN)
        print(f"-- submitted job {record['job_id']} ({record['status']})")

        # The same spec POSTs onto the *same* job — no duplicate run.
        again = client.submit(CAMPAIGN)
        assert again["job_id"] == record["job_id"]
        print(f"-- resubmit deduped (submissions={again['submissions']})")

        # Stream the job's JSONL events: full replay + live until terminal.
        trials = 0
        for event in client.events(record["job_id"]):
            if event["kind"] == "trial_completed":
                trials += 1
            elif event["kind"] in ("campaign_completed", "job_update"):
                print(f"-- event: {event['kind']}")
        print(f"-- streamed {trials} trial_completed events")

        # Fetch the stored CampaignResult of the completed job.
        payload = client.result(record["job_id"])
        result = payload["result"]
        print(f"-- result: {len(result['trials'])} trials on "
              f"{result['problem_name']}, failure-free baseline "
              f"{result['failure_free_outer']} outer iterations")
    finally:
        if daemon is not None:
            print("-- SIGTERM: the daemon drains workers, then exits")
            daemon.send_signal(signal.SIGTERM)
            daemon.wait(timeout=60)


if __name__ == "__main__":
    main()
