#!/usr/bin/env python
"""Reproduce Figure 4 (reduced scale): SDC sweep on the circuit problem.

Same protocol as ``poisson_fault_sweep.py`` applied to the nonsymmetric,
ill-conditioned circuit matrix (the offline surrogate for UF ``mult_dcop_03``).
The nonsymmetric case differs from the SPD case in two ways the paper
highlights: every Hessenberg entry may legitimately be nonzero, and the very
first inner iterations are extremely sensitive even to *small* faults.

Run with:  python examples/circuit_fault_sweep.py [n_nodes] [stride]
"""

from __future__ import annotations

import sys

from repro.experiments.figure34 import figure4
from repro.experiments.summary import summarize_campaign


def main(n_nodes: int = 1500, stride: int = 10) -> None:
    print(f"Running the Figure 4 sweep on a {n_nodes}-node circuit surrogate, "
          f"injection-location stride {stride} ...")
    figure = figure4(n_nodes=n_nodes, stride=stride, detector=None,
                     inner_iterations=25, max_outer=120)
    print()
    print(figure.render(width=70, height=12))

    print("\nSummary statistics:")
    for position, campaign in figure.panels().items():
        summary = summarize_campaign(campaign)
        print(f"  SDC on the {position} MGS iteration: failure-free outer = "
              f"{summary['failure_free_outer']}, worst-case increase = "
              f"+{summary['worst_case_increase']} ({summary['worst_case_percent']:.0f}%)")

    print("\nWhat to look for (compare with the paper's Figure 4):")
    print(" * the first few iterations of the first inner solve are the vulnerable region,")
    print("   including for the small (undetectable) fault classes;")
    print(" * away from that region the penalty is at most a couple of outer iterations;")
    print(" * faulting the last MGS coefficient penalizes more locations than the first.")


if __name__ == "__main__":
    n_nodes = int(sys.argv[1]) if len(sys.argv) > 1 else 1500
    stride = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    main(n_nodes, stride)
