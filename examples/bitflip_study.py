#!/usr/bin/env python
"""Bit-flip study: are bit flips really subsumed by the numerical SDC model?

The paper argues (Section III-A-2) that injecting bit flips is unnecessary:
any flip produces either a numerical value or NaN/Inf, so studying numerical
errors covers the bit-flip model.  This example tests that claim end to end:
it flips each individual bit of one Hessenberg coefficient inside the nested
FT-GMRES solve and records (a) whether the bound detector would catch it and
(b) what it costs in outer iterations when run through without detection.

Run with:  python examples/bitflip_study.py [grid_n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import BitFlipFault, FaultInjector, InjectionSchedule, ft_gmres, frobenius_norm
from repro.core.detectors import HessenbergBoundDetector
from repro.experiments.report import format_table
from repro.gallery.problems import poisson_problem

GROUPS = {
    "low mantissa (bits 0-25)": range(0, 26, 5),
    "high mantissa (bits 26-51)": range(26, 52, 5),
    "exponent (bits 52-62)": range(52, 63, 2),
    "sign (bit 63)": [63],
}


def main(grid_n: int = 20) -> None:
    problem = poisson_problem(grid_n=grid_n)
    bound = frobenius_norm(problem.A)
    detector = HessenbergBoundDetector(bound)
    clean = ft_gmres(problem.A, problem.b, inner_iterations=15, max_outer=60)
    print(f"Problem: {problem.name}, ||A||_F = {bound:.2f}, "
          f"failure-free outer iterations = {clean.outer_iterations}\n")

    rows = []
    for group, bits in GROUPS.items():
        detected = 0
        worst_extra = 0
        diverged = 0
        count = 0
        for bit in bits:
            injector = FaultInjector(
                BitFlipFault(bit=bit),
                InjectionSchedule(site="hessenberg", aggregate_inner_iteration=2,
                                  mgs_position="first"))
            result = ft_gmres(problem.A, problem.b, inner_iterations=15, max_outer=60,
                              injector=injector)
            count += 1
            record = injector.records[0]
            if detector.check_scalar(record.corrupted).flagged:
                detected += 1
            if result.converged:
                worst_extra = max(worst_extra,
                                  result.outer_iterations - clean.outer_iterations)
            else:
                diverged += 1
        rows.append([group, f"{detected}/{count}", f"+{worst_extra}", diverged])

    print(format_table(
        ["bit group flipped", "detectable by the bound", "worst extra outer iterations",
         "non-converged runs"],
        rows,
        title="Single bit flip in h_{1,j} of aggregate inner iteration 2",
    ))
    print("\nConclusion: mantissa and sign flips perturb the coefficient by a bounded")
    print("amount and are simply run through; high-exponent flips catapult the value past")
    print("||A||_F (or to Inf/NaN) and are exactly the cases the bound detector flags --")
    print("the numerical-error model covers both regimes, as the paper claims.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20)
