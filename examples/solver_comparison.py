#!/usr/bin/env python
"""Solver comparison: layered FT-GMRES vs flat GMRES vs detect-and-rollback.

The paper positions its "run through" philosophy against two alternatives:
solving with a single (unprotected) GMRES, and the detect/roll-back style of
Chen's Online-ABFT.  This example subjects all three to the same single SDC
event and compares iterations, extra operator applications, and outcome, on
both of the paper's problem classes.

The two Krylov strategies are driven through the one :func:`repro.api.solve`
facade — the *same* call with a different ``method`` in the spec — which is
the point of the config-first API: strategy comparisons are spec edits, not
new plumbing.  (The rollback baseline keeps its dedicated entry point: its
verification/checkpoint machinery is outside the spec surface.)

Run with:  python examples/solver_comparison.py [grid_n] [circuit_n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import ScalingFault, FaultInjector, InjectionSchedule, solve
from repro.baselines.chen import gmres_with_rollback
from repro.experiments.report import format_table
from repro.gallery.problems import circuit_problem, poisson_problem

#: The nested and the flat strategy, as declarative solve specs.
NESTED_SPEC = {"method": "ft_gmres", "max_outer": 120,
               "inner": {"method": "gmres", "tol": 0.0, "maxiter": 25}}
FLAT_SPEC = {"method": "gmres", "tol": 1e-8}


def make_injector(location: int = 1):
    return FaultInjector(
        ScalingFault(1e150),
        InjectionSchedule(site="hessenberg", aggregate_inner_iteration=location,
                          mgs_position="first"))


def run_case(problem, max_total_iterations: int = 600):
    norm_b = np.linalg.norm(problem.b)
    rows = []

    # 1. Nested FT-GMRES (the paper's approach): run through the fault.
    nested_clean = solve(problem.A, problem.b, NESTED_SPEC)
    nested_faulty = solve(problem.A, problem.b, NESTED_SPEC,
                          injector=make_injector())
    rows.append([
        "FT-GMRES (run through)",
        f"{nested_clean.outer_iterations} outer",
        f"{nested_faulty.outer_iterations} outer",
        f"{nested_faulty.residual_norm / norm_b:.1e}",
        nested_faulty.status.value,
    ])

    # 2. Flat GMRES, unprotected — the same facade, a different method.
    flat_clean = solve(problem.A, problem.b, FLAT_SPEC,
                       maxiter=max_total_iterations)
    flat_faulty = solve(problem.A, problem.b, FLAT_SPEC,
                        maxiter=max_total_iterations, injector=make_injector())
    rows.append([
        "GMRES (unprotected)",
        f"{flat_clean.iterations} iters",
        f"{flat_faulty.iterations} iters",
        f"{flat_faulty.residual_norm / norm_b:.1e}",
        flat_faulty.status.value,
    ])

    # 3. GMRES with periodic verification and rollback (Online-ABFT style).
    rollback = gmres_with_rollback(problem.A, problem.b, tol=1e-8,
                                   maxiter=max_total_iterations, check_interval=25,
                                   injector=make_injector())
    rows.append([
        "GMRES + verify/rollback",
        "-",
        f"{rollback.result.iterations} iters "
        f"(+{rollback.extra_matvecs} verify matvecs, {rollback.rollbacks} rollbacks)",
        f"{rollback.result.residual_norm / norm_b:.1e}",
        rollback.result.status.value,
    ])
    return rows


def main(grid_n: int = 25, circuit_n: int = 800) -> None:
    for problem in (poisson_problem(grid_n), circuit_problem(circuit_n)):
        print(f"\n=== {problem.name} ({problem.n} unknowns), "
              f"single SDC h -> h * 1e+150 at aggregate inner iteration 1 ===")
        rows = run_case(problem)
        print(format_table(
            ["strategy", "failure-free cost", "cost with the SDC", "final rel. residual",
             "status"],
            rows))
    print("\nTakeaways (matching the paper's argument):")
    print(" * the nested solver absorbs the fault at the cost of at most a couple of outer")
    print("   iterations and needs no verification traffic or checkpointed state;")
    print(" * the flat solver also eventually converges but pays for the corrupted Krylov")
    print("   space inside a single long recurrence;")
    print(" * the rollback scheme recovers too, but spends extra reliable matvecs on")
    print("   verification even in failure-free runs.")


if __name__ == "__main__":
    grid_n = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    circuit_n = int(sys.argv[2]) if len(sys.argv) > 2 else 800
    main(grid_n, circuit_n)
