#!/usr/bin/env python
"""Quickstart: solve a linear system with FT-GMRES and survive an injected SDC.

This example walks through the library's config-first workflow in four steps:

1. build one of the paper's test problems (a 2-D Poisson system),
2. solve it failure-free through the :func:`repro.api.solve` facade,
3. re-solve it while injecting a single huge silent data corruption (SDC)
   into the inner solver's orthogonalization — and watch it "run through",
4. enable the paper's Hessenberg-bound detector *declaratively* (the string
   spec ``"bound"``) and see the corruption get caught and filtered.

Everything is configured by a :class:`repro.specs.SolveSpec` — plain data
that round-trips through JSON — so the exact solver configuration can be
saved next to the results it produced.

Run with:  python examples/quickstart.py [grid_n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    FaultInjector,
    InjectionSchedule,
    ScalingFault,
    SolveSpec,
    frobenius_norm,
    poisson_problem,
    solve,
)


def main(grid_n: int = 30) -> None:
    # ------------------------------------------------------------------ 1.
    problem = poisson_problem(grid_n=grid_n)
    print(f"Problem: {problem.name} — {problem.n} unknowns, {problem.A.nnz} nonzeros, "
          f"||A||_F = {frobenius_norm(problem.A):.2f}")

    # ------------------------------------------------------------------ 2.
    # The paper's nested solver: 25 unconverged inner GMRES iterations per
    # reliable outer FGMRES iteration.  These are the ft_gmres defaults, so
    # the whole configuration is one line of data.
    spec = SolveSpec(method="ft_gmres", max_outer=100)
    print(f"\nSolve spec: {spec.to_json(indent=None)}")
    clean = solve(problem.A, problem.b, spec)
    print(f"Failure-free FT-GMRES: {clean.status.value} after "
          f"{clean.outer_iterations} outer iterations "
          f"(relative residual {clean.residual_norm / np.linalg.norm(problem.b):.2e}, "
          f"error vs exact solution {problem.error_norm(clean.x):.2e})")

    # ------------------------------------------------------------------ 3.
    # Inject a single transient SDC: the first Modified Gram-Schmidt
    # coefficient of aggregate inner iteration 3 is multiplied by 1e+150.
    injector = FaultInjector(
        ScalingFault(1e150),
        InjectionSchedule(site="hessenberg", aggregate_inner_iteration=3,
                          mgs_position="first"),
    )
    faulty = solve(problem.A, problem.b, spec, injector=injector)
    record = injector.records[0]
    print(f"\nInjected SDC: h = {record.original:.4f} -> {record.corrupted:.3e} "
          f"(inner solve {record.inner_solve_index}, inner iteration "
          f"{record.inner_iteration}, MGS position {record.mgs_index})")
    print(f"FT-GMRES with the SDC (no detector): {faulty.status.value} after "
          f"{faulty.outer_iterations} outer iterations "
          f"(+{faulty.outer_iterations - clean.outer_iterations} vs failure-free), "
          f"error {problem.error_norm(faulty.x):.2e}")

    # ------------------------------------------------------------------ 4.
    # Turning the detector on is a spec edit, not new plumbing: the string
    # "bound" resolves (via repro.registry) to the paper's Hessenberg-bound
    # detector built from ||A||_F, and "zero" filters what it flags.
    protected_spec = spec.replace(
        inner=SolveSpec(method="gmres", tol=0.0, maxiter=25,
                        detector="bound", detector_response="zero"))
    print(f"\nProtected spec: {protected_spec.to_json(indent=None)}")
    injector.reset()
    protected = solve(problem.A, problem.b, protected_spec, injector=injector)
    print(f"FT-GMRES with the SDC and the Hessenberg-bound detector: "
          f"{protected.status.value} after {protected.outer_iterations} outer iterations; "
          f"faults injected = {protected.faults_injected}, "
          f"detected and filtered = {protected.faults_detected}")
    print("\nThe detector catches the impossible value (|h| > ||A||_F), filters it, and the")
    print("nested solver converges with no extra work — the paper's central result.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30)
