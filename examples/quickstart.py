#!/usr/bin/env python
"""Quickstart: solve a linear system with FT-GMRES and survive an injected SDC.

This example walks through the library's core workflow in four steps:

1. build one of the paper's test problems (a 2-D Poisson system),
2. solve it failure-free with the nested FT-GMRES solver,
3. re-solve it while injecting a single huge silent data corruption (SDC)
   into the inner solver's orthogonalization — and watch it "run through",
4. enable the paper's Hessenberg-bound detector and see the corruption get
   caught and filtered.

Run with:  python examples/quickstart.py [grid_n]
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    FTGMRESParameters,
    FaultInjector,
    GMRESParameters,
    HessenbergBoundDetector,
    InjectionSchedule,
    ScalingFault,
    frobenius_norm,
    ft_gmres,
    poisson_problem,
)


def main(grid_n: int = 30) -> None:
    # ------------------------------------------------------------------ 1.
    problem = poisson_problem(grid_n=grid_n)
    print(f"Problem: {problem.name} — {problem.n} unknowns, {problem.A.nnz} nonzeros, "
          f"||A||_F = {frobenius_norm(problem.A):.2f}")

    # ------------------------------------------------------------------ 2.
    clean = ft_gmres(problem.A, problem.b, inner_iterations=25, max_outer=100)
    print(f"\nFailure-free FT-GMRES: {clean.status.value} after "
          f"{clean.outer_iterations} outer iterations "
          f"(relative residual {clean.residual_norm / np.linalg.norm(problem.b):.2e}, "
          f"error vs exact solution {problem.error_norm(clean.x):.2e})")

    # ------------------------------------------------------------------ 3.
    # Inject a single transient SDC: the first Modified Gram-Schmidt
    # coefficient of aggregate inner iteration 3 is multiplied by 1e+150.
    injector = FaultInjector(
        ScalingFault(1e150),
        InjectionSchedule(site="hessenberg", aggregate_inner_iteration=3,
                          mgs_position="first"),
    )
    faulty = ft_gmres(problem.A, problem.b, inner_iterations=25, max_outer=100,
                      injector=injector)
    record = injector.records[0]
    print(f"\nInjected SDC: h = {record.original:.4f} -> {record.corrupted:.3e} "
          f"(inner solve {record.inner_solve_index}, inner iteration "
          f"{record.inner_iteration}, MGS position {record.mgs_index})")
    print(f"FT-GMRES with the SDC (no detector): {faulty.status.value} after "
          f"{faulty.outer_iterations} outer iterations "
          f"(+{faulty.outer_iterations - clean.outer_iterations} vs failure-free), "
          f"error {problem.error_norm(faulty.x):.2e}")

    # ------------------------------------------------------------------ 4.
    detector = HessenbergBoundDetector(frobenius_norm(problem.A))
    params = FTGMRESParameters(
        inner=GMRESParameters(tol=0.0, maxiter=25, detector=detector,
                              detector_response="zero"))
    injector.reset()
    protected = ft_gmres(problem.A, problem.b, params=params, max_outer=100,
                         injector=injector)
    print(f"\nFT-GMRES with the SDC and the Hessenberg-bound detector: "
          f"{protected.status.value} after {protected.outer_iterations} outer iterations; "
          f"faults injected = {protected.faults_injected}, "
          f"detected and filtered = {protected.faults_detected}")
    print("\nThe detector catches the impossible value (|h| > ||A||_F), filters it, and the")
    print("nested solver converges with no extra work — the paper's central result.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 30)
