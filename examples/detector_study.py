#!/usr/bin/env python
"""Detector study: what the Hessenberg bound can and cannot catch.

The paper's detector compares every orthogonalization coefficient against
``||A||_F`` (or the tighter ``||A||_2``).  This example sweeps corruption
magnitudes from 1e-300 to 1e+150 on the Poisson problem and reports, for each
magnitude, the detection rate and the worst-case cost in outer iterations
with and without the detector's filtering response — making explicit the
paper's point that the undetectable faults are precisely the ones the nested
solver runs through anyway.

The campaigns run through the spec-driven ``run_campaign`` facade and the
table is computed with the ``TrialQuery`` aggregation API — the same code
would work unchanged on campaigns loaded back from a run store.

Run with:  python examples/detector_study.py [grid_n]
"""

from __future__ import annotations

import sys

from repro import frobenius_norm, two_norm_estimate
from repro.api import run_campaign
from repro.experiments.report import format_table
from repro.gallery.problems import poisson_problem

MAGNITUDES = {
    "x 1e+150": 1e150,
    "x 1e+12": 1e12,
    "x 1e+4": 1e4,
    "x 1e+1": 1e1,
    "x 10^-0.5": 10 ** -0.5,
    "x 1e-4": 1e-4,
    "x 1e-300": 1e-300,
}


def main(grid_n: int = 20) -> None:
    problem = poisson_problem(grid_n=grid_n)
    fro = frobenius_norm(problem.A)
    two = two_norm_estimate(problem.A)
    print(f"Problem: {problem.name} ({problem.n} unknowns)")
    print(f"Detector bounds: ||A||_F = {fro:.3f}, ||A||_2 ~ {two:.3f}\n")

    locations = list(range(0, 30, 3))
    rows = []
    for label, factor in MAGNITUDES.items():
        base = {
            "inner_iterations": 15,
            "max_outer": 60,
            "locations": locations,
            # fault models are registry specs, so the whole study is a set of
            # JSON-serializable campaign specs
            "fault_classes": {label: f"scaling:{factor!r}"},
        }
        unprotected = run_campaign(problem, dict(base, detector=None))
        protected = run_campaign(problem, dict(base, detector="bound",
                                               detector_response="zero"))

        def worst_extra(campaign) -> int:
            query = campaign.query().filter(fault_class=label)
            return max(int(query.max("outer_iterations"))
                       - campaign.failure_free_outer, 0)

        detected = (protected.query().filter(fault_class=label)
                    .rate(lambda t: t.faults_detected > 0))
        rows.append([
            label,
            f"{detected * 100:.0f}%",
            f"+{worst_extra(unprotected)}",
            f"+{worst_extra(protected)}",
        ])

    print(format_table(
        ["corruption", "detected", "worst extra outer (no detector)",
         "worst extra outer (detector + filter)"],
        rows,
        title=f"Single SDC on the first MGS coefficient, failure-free outer = "
              f"{unprotected.failure_free_outer}",
    ))
    print("\nReading the table:")
    print(" * corruptions that push |h| past ||A||_F are always detected and filtered;")
    print(" * corruptions below the bound are invisible to the detector -- and cost at most")
    print("   one or two extra outer iterations, which is exactly the paper's argument for")
    print("   bounding (rather than eliminating) the error committed in the sandbox.")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 20)
